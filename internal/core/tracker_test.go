package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func load(pid uint32, seq uint64, start mem.Addr, size uint32) cpu.Event {
	return cpu.Event{Kind: cpu.EvLoad, PID: pid, Seq: seq, Range: mem.MakeRange(start, size)}
}

func store(pid uint32, seq uint64, start mem.Addr, size uint32) cpu.Event {
	return cpu.Event{Kind: cpu.EvStore, PID: pid, Seq: seq, Range: mem.MakeRange(start, size)}
}

func source(pid uint32, start mem.Addr, size uint32) cpu.Event {
	return cpu.Event{Kind: cpu.EvSourceRegister, PID: pid, Range: mem.MakeRange(start, size)}
}

func TestConfigValidate(t *testing.T) {
	if (Config{NI: 0, NT: 1}).Validate() == nil {
		t.Error("NI=0 must be invalid")
	}
	if (Config{NI: 1, NT: 0}).Validate() == nil {
		t.Error("NT=0 must be invalid")
	}
	if err := (Config{NI: 13, NT: 3}).Validate(); err != nil {
		t.Errorf("paper config rejected: %v", err)
	}
}

// TestFigure4 walks the paper's Figure 4 scenario with NT=2:
//
//	[k+0] ldr  from a tainted range     → window opens
//	[k+p] str  → tainted (1st propagation)
//	[k+q] strd → tainted (2nd propagation)
//	[k+r] str  → NOT tainted (budget exhausted), untainted if enabled
//	[k+s] strh → outside window, untaint
//	[k+t] ldrd → non-tainted load: window does NOT restart
//	[k+u] str  → outside window, untaint
func TestFigure4(t *testing.T) {
	const NI, NT = 8, 2
	tr := NewTracker(Config{NI: NI, NT: NT, Untaint: true}, nil)

	tr.Event(source(1, 0x1000, 4))
	k := uint64(100)
	tr.Event(load(1, k, 0x1000, 4)) // tainted load: window [k, k+NI]

	tr.Event(store(1, k+2, 0x2000, 4))  // p=2: taint
	tr.Event(store(1, k+5, 0x3000, 8))  // q=5: taint
	tr.Event(store(1, k+7, 0x4000, 4))  // r=7: in window but budget gone
	tr.Event(store(1, k+12, 0x5000, 2)) // s=12: outside window

	if !tr.Check(1, mem.MakeRange(0x2000, 4)) {
		t.Error("first store in window must be tainted")
	}
	if !tr.Check(1, mem.MakeRange(0x3000, 8)) {
		t.Error("second store in window must be tainted")
	}
	if tr.Check(1, mem.MakeRange(0x4000, 4)) {
		t.Error("third store must not be tainted (NT=2)")
	}
	if tr.Check(1, mem.MakeRange(0x5000, 2)) {
		t.Error("store outside window must not be tainted")
	}

	// Non-tainted load must not restart the window.
	tr.Event(load(1, k+14, 0x9000, 8))
	tr.Event(store(1, k+15, 0x6000, 4))
	if tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("store after non-tainted load must not be tainted")
	}

	st := tr.Stats()
	if st.TaintOps != 2 {
		t.Errorf("TaintOps = %d, want 2", st.TaintOps)
	}
	if st.TaintedLoads != 1 {
		t.Errorf("TaintedLoads = %d, want 1", st.TaintedLoads)
	}
}

func TestWindowRestartOnTaintedLoad(t *testing.T) {
	tr := NewTracker(Config{NI: 5, NT: 1, Untaint: false}, nil)
	tr.Event(source(1, 0x1000, 4))

	tr.Event(load(1, 10, 0x1000, 4))  // window [10,15], budget 1
	tr.Event(store(1, 12, 0x2000, 4)) // consumes the budget
	tr.Event(load(1, 14, 0x1000, 4))  // tainted load restarts: budget refilled
	tr.Event(store(1, 18, 0x3000, 4)) // within new window
	if !tr.Check(1, mem.MakeRange(0x3000, 4)) {
		t.Error("restarted window must refill the propagation budget")
	}
}

func TestWindowBoundaryInclusive(t *testing.T) {
	// Algorithm 1 LINE 17: k <= LTLT + NI, an inclusive bound.
	tr := NewTracker(Config{NI: 5, NT: 3}, nil)
	tr.Event(source(1, 0x1000, 4))
	tr.Event(load(1, 10, 0x1000, 4))
	tr.Event(store(1, 15, 0x2000, 4)) // exactly LTLT+NI
	tr.Event(store(1, 16, 0x3000, 4)) // one past
	if !tr.Check(1, mem.MakeRange(0x2000, 4)) {
		t.Error("store at LTLT+NI is inside the window")
	}
	if tr.Check(1, mem.MakeRange(0x3000, 4)) {
		t.Error("store at LTLT+NI+1 is outside the window")
	}
}

func TestUntaintRemovesStaleData(t *testing.T) {
	tr := NewTracker(Config{NI: 5, NT: 2, Untaint: true}, nil)
	tr.Event(source(1, 0x1000, 4))
	tr.Event(load(1, 10, 0x1000, 4))
	tr.Event(store(1, 12, 0x2000, 4)) // tainted
	// Much later, the location is overwritten outside any window.
	tr.Event(store(1, 100, 0x2000, 4))
	if tr.Check(1, mem.MakeRange(0x2000, 4)) {
		t.Error("overwritten location must be untainted")
	}
	if tr.Stats().UntaintOps != 1 {
		t.Errorf("UntaintOps = %d, want 1", tr.Stats().UntaintOps)
	}
}

func TestUntaintDisabledKeepsData(t *testing.T) {
	tr := NewTracker(Config{NI: 5, NT: 2, Untaint: false}, nil)
	tr.Event(source(1, 0x1000, 4))
	tr.Event(load(1, 10, 0x1000, 4))
	tr.Event(store(1, 12, 0x2000, 4))
	tr.Event(store(1, 100, 0x2000, 4))
	if !tr.Check(1, mem.MakeRange(0x2000, 4)) {
		t.Error("without untainting the location must stay tainted")
	}
	if tr.Stats().UntaintOps != 0 {
		t.Error("untainting disabled must record no untaint ops")
	}
}

func TestUntaintOpsCountOnlyRealRemovals(t *testing.T) {
	tr := NewTracker(Config{NI: 5, NT: 1, Untaint: true}, nil)
	for seq := uint64(1); seq <= 100; seq++ {
		tr.Event(store(1, seq, mem.Addr(0x9000+seq*8), 4))
	}
	if ops := tr.Stats().UntaintOps; ops != 0 {
		t.Errorf("stores to clean memory caused %d untaint ops", ops)
	}
}

func TestPerProcessIsolation(t *testing.T) {
	tr := NewTracker(Config{NI: 10, NT: 3}, nil)
	tr.Event(source(1, 0x1000, 4))
	// Process 2 loads the same physical range: its taint set is separate.
	tr.Event(load(2, 5, 0x1000, 4))
	tr.Event(store(2, 6, 0x2000, 4))
	if tr.Check(2, mem.MakeRange(0x2000, 4)) {
		t.Error("process 2 must not see process 1's taint")
	}
	// Process 1's own window must be unaffected by process 2's events.
	tr.Event(load(1, 5, 0x1000, 4))
	tr.Event(load(2, 7, 0x5000, 4))
	tr.Event(store(1, 8, 0x3000, 4))
	if !tr.Check(1, mem.MakeRange(0x3000, 4)) {
		t.Error("interleaved process 2 events broke process 1's window")
	}
}

func TestChainedPropagation(t *testing.T) {
	// The paper's core mechanism: "repeating this prediction process
	// creates a chain of load–store operations", source → A → B → sink.
	tr := NewTracker(Config{NI: 5, NT: 1}, nil)
	tr.Event(source(1, 0x1000, 16))
	tr.Event(load(1, 10, 0x1000, 2))
	tr.Event(store(1, 12, 0x2000, 2)) // hop 1
	tr.Event(load(1, 20, 0x2000, 2))
	tr.Event(store(1, 22, 0x3000, 2)) // hop 2
	tr.Event(cpu.Event{Kind: cpu.EvSinkCheck, PID: 1, Seq: 30,
		Range: mem.MakeRange(0x3000, 2), Tag: 7})
	v := tr.Verdicts()
	if len(v) != 1 || !v[0].Tainted || v[0].Tag != 7 {
		t.Fatalf("verdicts = %+v", v)
	}
	if tr.Stats().TaintedSinks != 1 {
		t.Error("TaintedSinks not counted")
	}
}

func TestPartialOverlapOpensWindow(t *testing.T) {
	tr := NewTracker(Config{NI: 5, NT: 1}, nil)
	tr.Event(source(1, 0x1002, 2))
	tr.Event(load(1, 10, 0x1000, 4)) // word load straddling the tainted pair
	tr.Event(store(1, 12, 0x2000, 4))
	if !tr.Check(1, mem.MakeRange(0x2000, 4)) {
		t.Error("partially-overlapping load must open the window")
	}
}

func TestReset(t *testing.T) {
	tr := NewTracker(Config{NI: 5, NT: 1}, nil)
	tr.Event(source(1, 0x1000, 4))
	tr.Event(load(1, 1, 0x1000, 4))
	tr.Event(store(1, 2, 0x2000, 4))
	tr.Reset()
	if tr.TaintedBytes() != 0 || tr.RangeCount() != 0 || len(tr.Verdicts()) != 0 {
		t.Error("reset left state behind")
	}
	if tr.Stats() != (Stats{}) {
		t.Error("reset left stats behind")
	}
	// Window state must also be gone.
	tr.Event(store(1, 3, 0x3000, 4))
	if tr.Check(1, mem.MakeRange(0x3000, 4)) {
		t.Error("window survived reset")
	}
}

func TestHighWaterMarks(t *testing.T) {
	tr := NewTracker(Config{NI: 100, NT: 10, Untaint: true}, nil)
	tr.Event(source(1, 0x1000, 100))
	tr.Event(load(1, 1, 0x1000, 4))
	tr.Event(store(1, 2, 0x2000, 50))
	if st := tr.Stats(); st.MaxBytes != 150 || st.MaxRanges != 2 {
		t.Fatalf("high water = %d bytes / %d ranges, want 150/2", st.MaxBytes, st.MaxRanges)
	}
	// Untaint everything; maxima must persist.
	tr.Event(store(1, 500, 0x2000, 50))
	tr.Event(store(1, 501, 0x1000, 100))
	if st := tr.Stats(); st.MaxBytes != 150 {
		t.Fatalf("high water after untaint = %d", st.MaxBytes)
	}
	if tr.TaintedBytes() != 0 {
		t.Fatal("current bytes should be 0 after untainting all")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker with NI=0 must panic")
		}
	}()
	NewTracker(Config{NI: 0, NT: 1}, nil)
}
