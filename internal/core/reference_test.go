package core

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// refTracker is a deliberately naive byte-map implementation of
// Algorithm 1, used as a correctness model for the production tracker.
type refTracker struct {
	cfg     Config
	tainted map[uint32]map[mem.Addr]bool // pid → tainted bytes
	windows map[uint32]*refWindow
	verdict []bool
}

type refWindow struct {
	open bool
	ltlt uint64
	nt   int
}

func newRefTracker(cfg Config) *refTracker {
	return &refTracker{
		cfg:     cfg,
		tainted: make(map[uint32]map[mem.Addr]bool),
		windows: make(map[uint32]*refWindow),
	}
}

func (r *refTracker) bytes(pid uint32) map[mem.Addr]bool {
	b := r.tainted[pid]
	if b == nil {
		b = make(map[mem.Addr]bool)
		r.tainted[pid] = b
	}
	return b
}

func (r *refTracker) win(pid uint32) *refWindow {
	w := r.windows[pid]
	if w == nil {
		w = &refWindow{}
		r.windows[pid] = w
	}
	return w
}

func (r *refTracker) overlaps(pid uint32, rg mem.Range) bool {
	b := r.bytes(pid)
	for a := rg.Start; ; a++ {
		if b[a] {
			return true
		}
		if a == rg.End {
			break
		}
	}
	return false
}

func (r *refTracker) setRange(pid uint32, rg mem.Range, v bool) {
	b := r.bytes(pid)
	for a := rg.Start; ; a++ {
		if v {
			b[a] = true
		} else {
			delete(b, a)
		}
		if a == rg.End {
			break
		}
	}
}

func (r *refTracker) event(ev cpu.Event) {
	switch ev.Kind {
	case cpu.EvLoad:
		if r.overlaps(ev.PID, ev.Range) {
			w := r.win(ev.PID)
			w.open = true
			w.ltlt = ev.Seq
			w.nt = 0
		}
	case cpu.EvStore:
		w := r.win(ev.PID)
		if w.open && ev.Seq <= w.ltlt+r.cfg.NI && w.nt < r.cfg.NT {
			r.setRange(ev.PID, ev.Range, true)
			w.nt++
		} else if r.cfg.Untaint {
			r.setRange(ev.PID, ev.Range, false)
		}
	case cpu.EvSourceRegister:
		r.setRange(ev.PID, ev.Range, true)
	case cpu.EvSinkCheck:
		r.verdict = append(r.verdict, r.overlaps(ev.PID, ev.Range))
	}
}

func (r *refTracker) taintedBytes() uint64 {
	var n uint64
	for _, b := range r.tainted {
		n += uint64(len(b))
	}
	return n
}

// TestTrackerMatchesReference drives random event streams through the
// production tracker and the byte-map model and requires identical taint
// state, sink verdicts, and byte counts at every step.
func TestTrackerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		cfg := Config{
			NI:      uint64(rng.Intn(20) + 1),
			NT:      rng.Intn(5) + 1,
			Untaint: rng.Intn(2) == 0,
		}
		tr := NewTracker(cfg, nil)
		ref := newRefTracker(cfg)
		seq := map[uint32]uint64{}
		for step := 0; step < 400; step++ {
			pid := uint32(rng.Intn(2) + 1)
			seq[pid] += uint64(rng.Intn(4) + 1)
			rg := mem.MakeRange(mem.Addr(rng.Intn(200)), uint32(rng.Intn(8)+1))
			var kind cpu.EventKind
			switch v := rng.Intn(20); {
			case v == 0:
				kind = cpu.EvSourceRegister
			case v == 1:
				kind = cpu.EvSinkCheck
			case v < 9:
				kind = cpu.EvLoad
			default:
				kind = cpu.EvStore
			}
			ev := cpu.Event{Kind: kind, PID: pid, Seq: seq[pid], Range: rg, Tag: step}
			tr.Event(ev)
			ref.event(ev)

			if got, want := tr.TaintedBytes(), ref.taintedBytes(); got != want {
				t.Fatalf("trial %d step %d (%v): tainted bytes %d, model %d",
					trial, step, cfg, got, want)
			}
		}
		verdicts := tr.Verdicts()
		if len(verdicts) != len(ref.verdict) {
			t.Fatalf("trial %d: verdict counts differ: %d vs %d",
				trial, len(verdicts), len(ref.verdict))
		}
		for i := range verdicts {
			if verdicts[i].Tainted != ref.verdict[i] {
				t.Fatalf("trial %d verdict %d: tracker %v, model %v (cfg %v)",
					trial, i, verdicts[i].Tainted, ref.verdict[i], cfg)
			}
		}
	}
}

// TestTrackerMatchesReferenceWithCache repeats the model check with the
// Figure 6 range cache as the backing store (large enough not to drop):
// hardware structure must not change semantics.
func TestTrackerMatchesReferenceWithCache(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		cfg := Config{NI: uint64(rng.Intn(15) + 1), NT: rng.Intn(4) + 1, Untaint: true}
		tr := NewTracker(cfg, NewRangeCache(512, EvictLRU))
		ref := newRefTracker(cfg)
		seq := uint64(0)
		for step := 0; step < 300; step++ {
			seq += uint64(rng.Intn(3) + 1)
			rg := mem.MakeRange(mem.Addr(rng.Intn(150)), uint32(rng.Intn(6)+1))
			var kind cpu.EventKind
			switch v := rng.Intn(20); {
			case v == 0:
				kind = cpu.EvSourceRegister
			case v == 1:
				kind = cpu.EvSinkCheck
			case v < 9:
				kind = cpu.EvLoad
			default:
				kind = cpu.EvStore
			}
			ev := cpu.Event{Kind: kind, PID: 1, Seq: seq, Range: rg, Tag: step}
			tr.Event(ev)
			ref.event(ev)
			if got, want := tr.TaintedBytes(), ref.taintedBytes(); got != want {
				t.Fatalf("trial %d step %d: cache-backed bytes %d, model %d",
					trial, step, got, want)
			}
		}
		verdicts := tr.Verdicts()
		for i := range verdicts {
			if verdicts[i].Tainted != ref.verdict[i] {
				t.Fatalf("trial %d verdict %d differs with cache store", trial, i)
			}
		}
	}
}
