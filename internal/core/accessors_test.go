package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// TestTrackerAccessors covers the footprint accessors session managers
// use for memory-budget accounting.
func TestTrackerAccessors(t *testing.T) {
	tr := NewTracker(Config{NI: 13, NT: 3, Untaint: true}, nil)
	if tr.Store() == nil {
		t.Fatal("nil taint store")
	}
	if tr.WindowCount() != 0 || tr.Ops() != 0 {
		t.Fatalf("fresh tracker: %d windows, %d ops", tr.WindowCount(), tr.Ops())
	}
	secret := mem.MakeRange(0x1000, 8)
	tr.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 1, Seq: 1, Range: secret})
	tr.Event(cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: 2, Range: secret})
	tr.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: 3, Range: mem.MakeRange(0x2000, 8)})
	if tr.WindowCount() != 1 {
		t.Errorf("windows = %d, want 1 (one PID with a tainted load)", tr.WindowCount())
	}
	if tr.Ops() == 0 {
		t.Error("no taint ops counted after a carried store")
	}
}
