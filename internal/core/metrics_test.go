package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// TestTrackerMetrics drives a hand-built event sequence through an
// instrumented tracker and checks every counter against the Stats the
// same run accumulates, plus the window open/expire accounting that only
// the metrics observe.
func TestTrackerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	tm := NewTrackerMetrics(reg)
	tr := NewTracker(Config{NI: 4, NT: 2, Untaint: true}, nil)
	tr.SetMetrics(tm)

	tr.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 1, Seq: 0,
		Range: mem.Range{Start: 100, End: 199}})

	tr.Event(load(1, 1, 100, 4))   // tainted load: window opens
	tr.Event(store(1, 2, 300, 4))  // inside window: taint add
	tr.Event(store(1, 3, 310, 4))  // inside window: taint add (budget spent)
	tr.Event(store(1, 4, 320, 4))  // budget exhausted, clean target: no-op
	tr.Event(load(1, 5, 100, 4))   // tainted load: window restarts
	tr.Event(store(1, 12, 300, 4)) // past NI=4: expiration + untaint
	tr.Event(store(1, 13, 320, 4)) // window closed, clean target: no-op

	tr.Event(cpu.Event{Kind: cpu.EvSinkCheck, PID: 1, Seq: 14, Tag: 1,
		Range: mem.Range{Start: 310, End: 311}}) // still tainted
	tr.Event(cpu.Event{Kind: cpu.EvSinkCheck, PID: 1, Seq: 15, Tag: 2,
		Range: mem.Range{Start: 300, End: 303}}) // untainted above

	st := tr.Stats()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"window opens", tm.WindowOpens.Value(), st.TaintedLoads},
		{"window opens value", tm.WindowOpens.Value(), 2},
		{"window expirations", tm.WindowExpirations.Value(), 1},
		{"taint adds", tm.TaintAdds.Value(), st.TaintOps},
		{"taint adds value", tm.TaintAdds.Value(), 2},
		{"untaints", tm.Untaints.Value(), st.UntaintOps},
		{"untaints value", tm.Untaints.Value(), 1},
		{"sink checks", tm.SinkChecks.Value(), st.SinkChecks},
		{"tainted sinks", tm.TaintedSinks.Value(), st.TaintedSinks},
		{"tainted sinks value", tm.TaintedSinks.Value(), 1},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: metric %d, want %d", c.name, c.got, c.want)
		}
	}
	if got, want := tm.TaintedBytesHigh.Value(), int64(st.MaxBytes); got != want {
		t.Errorf("tainted bytes high-water: metric %d, want %d", got, want)
	}
	if got, want := tm.TaintedRangesHigh.Value(), int64(st.MaxRanges); got != want {
		t.Errorf("tainted ranges high-water: metric %d, want %d", got, want)
	}
}

// TestTrackerUninstrumentedUnchanged replays the same stream with and
// without metrics attached and requires identical Stats and verdicts —
// instrumentation must be observation-only.
func TestTrackerUninstrumentedUnchanged(t *testing.T) {
	run := func(instrument bool) (Stats, []SinkVerdict) {
		tr := NewTracker(Config{NI: 3, NT: 2, Untaint: true}, nil)
		if instrument {
			tr.SetMetrics(NewTrackerMetrics(metrics.NewRegistry()))
		}
		tr.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 7, Seq: 0,
			Range: mem.Range{Start: 0x1000, End: 0x10ff}})
		seq := uint64(1)
		for i := 0; i < 64; i++ {
			tr.Event(load(7, seq, 0x1000+mem.Addr(i%32)*4, 4))
			seq += uint64(i % 5)
			tr.Event(store(7, seq, 0x2000+mem.Addr(i)*4, 4))
			seq++
		}
		tr.Event(cpu.Event{Kind: cpu.EvSinkCheck, PID: 7, Seq: seq, Tag: 1,
			Range: mem.Range{Start: 0x2000, End: 0x20ff}})
		return tr.Stats(), tr.Verdicts()
	}
	plainStats, plainVerdicts := run(false)
	instrStats, instrVerdicts := run(true)
	if plainStats != instrStats {
		t.Errorf("stats diverge: plain %+v, instrumented %+v", plainStats, instrStats)
	}
	if len(plainVerdicts) != len(instrVerdicts) {
		t.Fatalf("verdict counts diverge")
	}
	for i := range plainVerdicts {
		if plainVerdicts[i] != instrVerdicts[i] {
			t.Errorf("verdict %d diverges: %+v vs %+v", i, plainVerdicts[i], instrVerdicts[i])
		}
	}
}
