package core

import "sort"

// Merge accumulates another tracker's statistics into s: event and
// operation counters sum exactly, while the MaxBytes/MaxRanges watermarks
// take the maximum of the two runs.
//
// For shards of one event stream split by PID (taint state is per-process,
// so the split is semantics-preserving) the summed counters equal the
// sequential tracker's exactly. The merged watermark is the largest any
// one shard reached: identical to the sequential value whenever taint
// lives in a single process at a time (every DroidBench trace), and a
// lower bound on the instantaneous cross-process total otherwise. The same
// max semantics serve multi-run aggregation, where the watermark of the
// worst run is the quantity of interest.
func (s *Stats) Merge(other Stats) {
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.TaintedLoads += other.TaintedLoads
	s.TaintOps += other.TaintOps
	s.UntaintOps += other.UntaintOps
	s.SourceRegs += other.SourceRegs
	s.SinkChecks += other.SinkChecks
	s.TaintedSinks += other.TaintedSinks
	if other.MaxBytes > s.MaxBytes {
		s.MaxBytes = other.MaxBytes
	}
	if other.MaxRanges > s.MaxRanges {
		s.MaxRanges = other.MaxRanges
	}
}

// SortVerdicts puts sink verdicts into the canonical replay order: by PID,
// then per-process sequence number, then sink tag. A sequential tracker's
// verdict list and the concatenation of per-shard verdict lists sort to
// identical sequences, which is what lets a sharded pipeline's output be
// compared byte-for-byte against the sequential oracle. The sort is
// stable, so verdicts that tie on all three keys keep their stream order.
func SortVerdicts(vs []SinkVerdict) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Tag < b.Tag
	})
}
