package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// Config holds the tainting-window parameters of Algorithm 1.
type Config struct {
	// NI is the tainting-window size, measured in instructions from the
	// last tainted load.
	NI uint64
	// NT is the maximum number of taint propagations per window.
	NT int
	// Untaint enables the untainting rule: a store outside the window
	// removes its target range from the taint set.
	Untaint bool
}

// Validate reports configuration errors. NI=0 or NT=0 disables all
// propagation, which is never what an experiment means.
func (c Config) Validate() error {
	if c.NI < 1 {
		return fmt.Errorf("core: NI must be >= 1, got %d", c.NI)
	}
	if c.NT < 1 {
		return fmt.Errorf("core: NT must be >= 1, got %d", c.NT)
	}
	return nil
}

func (c Config) String() string {
	u := "untaint=off"
	if c.Untaint {
		u = "untaint=on"
	}
	return fmt.Sprintf("NI=%d NT=%d %s", c.NI, c.NT, u)
}

// Stats aggregates the tracker-side overhead metrics the paper evaluates in
// §5.2. Maxima are tracked continuously so heatmap experiments (Figures 14
// and 17) can read them after a run.
type Stats struct {
	Loads        uint64 // load events seen
	Stores       uint64 // store events seen
	TaintedLoads uint64 // loads that hit the taint store (opened a window)
	TaintOps     uint64 // store targets tainted (LINE 18 executions)
	UntaintOps   uint64 // stores that actually removed taint (LINE 21)
	SourceRegs   uint64 // software source registrations
	SinkChecks   uint64 // software sink queries
	TaintedSinks uint64 // sink queries that found taint

	MaxBytes  uint64 // maximum tainted bytes at any instant
	MaxRanges int    // maximum distinct ranges at any instant
}

// SinkVerdict records the outcome of one sink taint query, identified by
// the tag assigned at injection time so replays can match verdicts to
// sink calls.
type SinkVerdict struct {
	Tag     int
	PID     uint32
	Seq     uint64
	Tainted bool
}

// window is the per-process tainting-window state of Algorithm 1:
// LTLT (last tainted-load time) and nt (propagations so far).
type window struct {
	open bool
	ltlt uint64
	nt   int
}

// Tracker is the PIFT taint-propagation engine. It implements
// cpu.EventSink, so it can be attached directly to a live machine or fed a
// recorded trace event by event.
type Tracker struct {
	cfg      Config
	store    Store
	windows  map[uint32]*window
	stats    Stats
	verdicts []SinkVerdict
	m        TrackerMetrics

	// Last-hit window cache: traces arrive as per-process bursts, so the
	// common case is a run of events for one PID and the map lookup in
	// win is skipped for all but the first of each run.
	lastPID uint32
	lastWin *window
}

// NewTracker builds a tracker over the given store; a nil store gets a
// fresh unbounded IdealStore. Invalid configs panic: they are experiment
// bugs, not runtime conditions.
func NewTracker(cfg Config, store Store) *Tracker {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if store == nil {
		store = NewIdealStore()
	}
	return &Tracker{
		cfg:     cfg,
		store:   store,
		windows: make(map[uint32]*window),
	}
}

// Config returns the tracker's window parameters.
func (t *Tracker) Config() Config { return t.cfg }

// SetConfig reconfigures the window parameters at run time — the paper's
// Figure 5 exposes NI and NT as software-settable hardware registers.
// Invalid configurations are rejected and the current one kept.
func (t *Tracker) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	t.cfg = cfg
	return nil
}

// Store returns the underlying taint store.
func (t *Tracker) Store() Store { return t.store }

// Stats returns a snapshot of the counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Verdicts returns all sink verdicts recorded so far, in order.
func (t *Tracker) Verdicts() []SinkVerdict { return t.verdicts }

// WindowCount returns the number of per-process tainting windows the
// tracker currently holds — one per PID that has ever produced a tainted
// load. Session managers use it (with RangeCount and the verdict count) to
// estimate a tracker's resident footprint for memory-budget accounting.
func (t *Tracker) WindowCount() int { return len(t.windows) }

// TaintedBytes returns the current total tainted bytes (Figure 15 samples
// this while pumping a trace).
func (t *Tracker) TaintedBytes() uint64 { return t.store.TaintedBytes() }

// RangeCount returns the current number of distinct tainted ranges.
func (t *Tracker) RangeCount() int { return t.store.RangeCount() }

// Ops returns the cumulative tainting+untainting operation count
// (Figure 16 samples this).
func (t *Tracker) Ops() uint64 { return t.stats.TaintOps + t.stats.UntaintOps }

// Check answers a synchronous taint query, as the kernel module does for
// the software stack, without recording a verdict.
func (t *Tracker) Check(pid uint32, r mem.Range) bool {
	return t.store.Overlaps(pid, r)
}

// Event implements cpu.EventSink: Algorithm 1, TAINT PROPAGATION HEURISTIC.
func (t *Tracker) Event(ev cpu.Event) {
	switch ev.Kind {
	case cpu.EvLoad:
		t.stats.Loads++
		// LINE 10–15: a load overlapping the taint set starts (or
		// restarts) the tainting window.
		if t.store.Overlaps(ev.PID, ev.Range) {
			t.stats.TaintedLoads++
			t.m.WindowOpens.Inc()
			w := t.win(ev.PID)
			w.open = true
			w.ltlt = ev.Seq
			w.nt = 0
		}

	case cpu.EvStore:
		t.stats.Stores++
		w := t.win(ev.PID)
		if w.open && ev.Seq > w.ltlt+t.cfg.NI {
			// Per-process sequence numbers are monotone, so a window seen
			// past its NI horizon can never taint again until a tainted
			// load reopens it. Closing it here is observationally
			// equivalent and lets each window expire exactly once.
			w.open = false
			t.m.WindowExpirations.Inc()
		}
		// LINE 17–19: inside the window with propagation budget left —
		// taint the store target.
		if w.open && w.nt < t.cfg.NT {
			t.store.Add(ev.PID, ev.Range)
			w.nt++
			t.stats.TaintOps++
			t.m.TaintAdds.Inc()
			t.noteHighWater()
			return
		}
		// LINE 20–22: otherwise untaint (if enabled). Only actual
		// removals count as operations; a store to clean memory costs
		// the hardware a lookup miss, not a state change.
		if t.cfg.Untaint {
			if t.store.Remove(ev.PID, ev.Range) {
				t.stats.UntaintOps++
				t.m.Untaints.Inc()
			}
		}

	case cpu.EvSourceRegister:
		t.stats.SourceRegs++
		t.store.Add(ev.PID, ev.Range)
		t.noteHighWater()

	case cpu.EvSinkCheck:
		t.stats.SinkChecks++
		t.m.SinkChecks.Inc()
		tainted := t.store.Overlaps(ev.PID, ev.Range)
		if tainted {
			t.stats.TaintedSinks++
			t.m.TaintedSinks.Inc()
		}
		t.verdicts = append(t.verdicts, SinkVerdict{
			Tag: ev.Tag, PID: ev.PID, Seq: ev.Seq, Tainted: tainted,
		})
	}
}

func (t *Tracker) win(pid uint32) *window {
	if t.lastWin != nil && t.lastPID == pid {
		return t.lastWin
	}
	w := t.windows[pid]
	if w == nil {
		w = &window{}
		t.windows[pid] = w
	}
	t.lastPID, t.lastWin = pid, w
	return w
}

func (t *Tracker) noteHighWater() {
	if b := t.store.TaintedBytes(); b > t.stats.MaxBytes {
		t.stats.MaxBytes = b
		t.m.TaintedBytesHigh.TrackMax(int64(b))
	}
	if n := t.store.RangeCount(); n > t.stats.MaxRanges {
		t.stats.MaxRanges = n
		t.m.TaintedRangesHigh.TrackMax(int64(n))
	}
}

// Reset clears taint state, window state, statistics, and verdicts, keeping
// the configuration. Replay harnesses reuse trackers across traces.
func (t *Tracker) Reset() {
	t.store.Reset()
	t.windows = make(map[uint32]*window)
	t.stats = Stats{}
	t.verdicts = nil
	t.lastWin = nil
}
