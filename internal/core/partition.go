package core

import (
	"fmt"

	"repro/internal/mem"
)

// Tracker state partition and merge — the serving layer's bridge between
// one sequential per-tenant tracker and a sharded pipeline run. Taint
// state, windows, and verdicts are all keyed by PID (the paper's
// process-specific ID tags every storage entry, Figure 6), so a tracker
// splits losslessly along any PID partition: SplitByPID deals each PID's
// state to its shard, the shards analyze disjoint PID subsequences, and
// MergeTrackers reassembles one tracker indistinguishable from a
// sequential run over the whole stream.
//
// Exactness contract (the same one pipeline.Result documents): counters
// and per-PID state are exact under split/replay/merge; the
// MaxBytes/MaxRanges watermarks are exact whenever taint lives in a
// single process at a time (every DroidBench trace — and in particular
// every single-PID tenant stream, for which the merged tracker's
// canonical snapshot is byte-identical to the sequential tracker's), and
// a lower bound on the cross-process instantaneous total otherwise.
// Merged verdicts are in canonical (PID, Seq, Tag) order; for a
// single-PID stream the canonical order IS the stream order (SortVerdicts
// is stable), so even verdict bytes match the sequential tracker exactly.

// SplitByPID deals a copy of the tracker's state onto n fresh trackers:
// every PID's window, taint set, and verdicts go to shard shardOf(pid),
// and the aggregate Stats are seeded whole onto shard 0 so a plain
// Stats.Merge over the shards yields prior history plus per-shard deltas.
// The receiver is not modified — the split is a snapshot, so a caller can
// abandon the shards (after a downstream failure) and still hold the
// original. Requires the unbounded IdealStore, like the snapshot codec:
// bounded stores evict by capacity and cannot be partitioned exactly.
func (t *Tracker) SplitByPID(n int, shardOf func(pid uint32) int) ([]*Tracker, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: split into %d trackers", n)
	}
	ideal, ok := t.store.(*IdealStore)
	if !ok {
		return nil, fmt.Errorf("core: split supports only the ideal store, have %T", t.store)
	}
	parts := make([]*Tracker, n)
	for i := range parts {
		parts[i] = NewTracker(t.cfg, nil)
	}
	place := func(pid uint32) (*Tracker, error) {
		i := shardOf(pid)
		if i < 0 || i >= n {
			return nil, fmt.Errorf("core: shard function sent pid %d to %d of %d", pid, i, n)
		}
		return parts[i], nil
	}
	for pid, w := range t.windows {
		p, err := place(pid)
		if err != nil {
			return nil, err
		}
		cp := *w
		p.windows[pid] = &cp
	}
	var ranges []mem.Range
	for _, pid := range ideal.PIDs() {
		p, err := place(pid)
		if err != nil {
			return nil, err
		}
		ranges = ideal.AppendRanges(pid, ranges[:0])
		for _, r := range ranges {
			p.store.Add(pid, r)
		}
	}
	for _, v := range t.verdicts {
		p, err := place(v.PID)
		if err != nil {
			return nil, err
		}
		p.verdicts = append(p.verdicts, v)
	}
	parts[0].stats = t.stats
	return parts, nil
}

// MergeTrackers folds PID-disjoint shard trackers (a SplitByPID family
// after further events) back into one tracker. State is copied out of the
// shards — they may keep running afterwards — and the merged tracker is
// semantically the union: windows and taint sets union by PID (a PID in
// two shards is a misuse error), counters sum and watermarks max via
// Stats.Merge, and verdicts concatenate in shard order then sort
// canonically with SortVerdicts.
func MergeTrackers(parts []*Tracker) (*Tracker, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: merge of zero trackers")
	}
	cfg := parts[0].cfg
	out := NewTracker(cfg, nil)
	seen := make(map[uint32]int, len(parts[0].windows)*len(parts))
	var ranges []mem.Range
	for i, part := range parts {
		if part.cfg != cfg {
			return nil, fmt.Errorf("core: merge config mismatch: shard %d has %v, shard 0 has %v", i, part.cfg, cfg)
		}
		ideal, ok := part.store.(*IdealStore)
		if !ok {
			return nil, fmt.Errorf("core: merge supports only the ideal store, shard %d has %T", i, part.store)
		}
		claim := func(pid uint32) error {
			if j, dup := seen[pid]; dup && j != i {
				return fmt.Errorf("core: merge: pid %d present in shards %d and %d", pid, j, i)
			}
			seen[pid] = i
			return nil
		}
		for pid, w := range part.windows {
			if err := claim(pid); err != nil {
				return nil, err
			}
			cp := *w
			out.windows[pid] = &cp
		}
		for _, pid := range ideal.PIDs() {
			if err := claim(pid); err != nil {
				return nil, err
			}
			ranges = ideal.AppendRanges(pid, ranges[:0])
			for _, r := range ranges {
				out.store.Add(pid, r)
			}
		}
		out.stats.Merge(part.stats)
		out.verdicts = append(out.verdicts, part.verdicts...)
	}
	SortVerdicts(out.verdicts)
	return out, nil
}
