package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// Example walks the paper's Figure 4 scenario by hand: a tainted load
// opens a window of NI instructions; the next NT stores inside it are
// tainted; later stores are not.
func Example() {
	tracker := core.NewTracker(core.Config{NI: 8, NT: 2, Untaint: true}, nil)

	// The framework registers a sensitive range (PIFT Manager path).
	tracker.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 1,
		Range: mem.MakeRange(0x1000, 4)})

	// [k+0] a load from the tainted range opens the window.
	tracker.Event(cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: 100,
		Range: mem.MakeRange(0x1000, 4)})
	// [k+2] first store: tainted.
	tracker.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: 102,
		Range: mem.MakeRange(0x2000, 4)})
	// [k+5] second store: tainted (budget NT=2 now spent).
	tracker.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: 105,
		Range: mem.MakeRange(0x3000, 4)})
	// [k+7] third store: inside the window but over budget.
	tracker.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: 107,
		Range: mem.MakeRange(0x4000, 4)})

	for _, addr := range []mem.Addr{0x2000, 0x3000, 0x4000} {
		fmt.Printf("0x%x tainted: %v\n", addr,
			tracker.Check(1, mem.MakeRange(addr, 4)))
	}
	// Output:
	// 0x2000 tainted: true
	// 0x3000 tainted: true
	// 0x4000 tainted: false
}

// ExampleRangeCache shows the Figure 6 hardware taint storage with the
// drop-on-overflow policy: a tiny cache loses ranges (possible false
// negatives), which the statistics expose.
func ExampleRangeCache() {
	cache := core.NewRangeCache(2, core.EvictDrop)
	cache.Add(1, mem.MakeRange(0x100, 8))
	cache.Add(1, mem.MakeRange(0x200, 8))
	cache.Add(1, mem.MakeRange(0x300, 8)) // no slot free: dropped

	fmt.Println("0x100 found:", cache.Overlaps(1, mem.MakeRange(0x100, 4)))
	fmt.Println("0x300 found:", cache.Overlaps(1, mem.MakeRange(0x300, 4)))
	fmt.Println("drops:", cache.Stats().Drops)
	// Output:
	// 0x100 found: true
	// 0x300 found: false
	// drops: 1
}
