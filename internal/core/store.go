// Package core implements the paper's contribution: the PIFT predictive
// taint tracker (Algorithm 1) and the models of its hardware taint storage
// (Figures 5 and 6).
//
// The tracker consumes the front-end event stream produced by internal/cpu
// — memory loads and stores with process ID, per-process instruction
// counter, and byte range — plus the software commands issued through the
// kernel module: source registrations and sink taint queries. It never sees
// registers or non-memory instructions; that restriction is the paper's
// design point.
package core

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/taint"
)

// Store is the taint storage the tracker operates on: the hardware "taint
// storage" block of Figure 5. Entries are tagged with the process-specific
// ID, as in Figure 6.
type Store interface {
	// Add taints the range for the process.
	Add(pid uint32, r mem.Range)
	// Remove untaints the range and reports whether any byte was
	// actually untainted (used to count real untainting operations).
	Remove(pid uint32, r mem.Range) bool
	// Overlaps is the lookup of Figure 6: does any tainted entry of this
	// process overlap r?
	Overlaps(pid uint32, r mem.Range) bool
	// RangeCount returns the total number of distinct tainted ranges
	// currently stored (all processes).
	RangeCount() int
	// TaintedBytes returns the total tainted bytes currently stored.
	TaintedBytes() uint64
	// Reset clears all taint state.
	Reset()
}

// IdealStore is an unbounded taint store backed by one normalized RangeSet
// per process. It models a taint storage large enough that no eviction ever
// happens — the configuration the paper's accuracy results assume (§5.2
// argues ≤100 ranges suffice for NI ≤ 10, so a small on-chip memory behaves
// like this ideal).
//
// The store maintains its cross-process aggregates (total tainted bytes
// and distinct ranges) incrementally from the deltas each RangeSet
// mutation returns, so TaintedBytes and RangeCount are O(1) — they sit on
// the tracker's per-taint-add high-water path and must not rescan every
// per-PID set. It also caches the last-hit per-PID set: event streams are
// bursts from one process (the trace interleave switches PIDs once per
// scheduling quantum), so consecutive operations skip the map lookup.
type IdealStore struct {
	sets        map[uint32]*taint.RangeSet
	totalBytes  uint64
	totalRanges int
	lastPID     uint32
	lastSet     *taint.RangeSet // nil when no lookup has hit yet
}

// NewIdealStore returns an empty unbounded store.
func NewIdealStore() *IdealStore {
	return &IdealStore{sets: make(map[uint32]*taint.RangeSet)}
}

func (s *IdealStore) set(pid uint32, create bool) *taint.RangeSet {
	if s.lastSet != nil && s.lastPID == pid {
		return s.lastSet
	}
	rs := s.sets[pid]
	if rs == nil {
		if !create {
			return nil
		}
		rs = &taint.RangeSet{}
		s.sets[pid] = rs
	}
	s.lastPID, s.lastSet = pid, rs
	return rs
}

// Add implements Store.
func (s *IdealStore) Add(pid uint32, r mem.Range) {
	b, n := s.set(pid, true).Add(r)
	s.totalBytes += b
	s.totalRanges += n
}

// Remove implements Store.
func (s *IdealStore) Remove(pid uint32, r mem.Range) bool {
	rs := s.set(pid, false)
	if rs == nil {
		return false
	}
	b, n := rs.Remove(r)
	s.totalBytes -= b
	s.totalRanges += n
	return b > 0
}

// Overlaps implements Store.
func (s *IdealStore) Overlaps(pid uint32, r mem.Range) bool {
	rs := s.set(pid, false)
	return rs != nil && rs.Overlaps(r)
}

// RangeCount implements Store.
func (s *IdealStore) RangeCount() int { return s.totalRanges }

// TaintedBytes implements Store.
func (s *IdealStore) TaintedBytes() uint64 { return s.totalBytes }

// Reset implements Store.
func (s *IdealStore) Reset() {
	s.sets = make(map[uint32]*taint.RangeSet)
	s.totalBytes = 0
	s.totalRanges = 0
	s.lastSet = nil
}

// PIDs returns the processes that currently own at least one tainted
// range, in ascending order — the canonical iteration order the snapshot
// codec serializes taint state in. Processes whose sets have been fully
// untainted are elided, so the listing is a pure function of the store's
// semantic content.
func (s *IdealStore) PIDs() []uint32 {
	pids := make([]uint32, 0, len(s.sets))
	for pid, rs := range s.sets {
		if rs.Count() > 0 {
			pids = append(pids, pid)
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}

// Ranges exposes the normalized ranges of one process for tests and
// diagnostics.
func (s *IdealStore) Ranges(pid uint32) []mem.Range {
	rs := s.set(pid, false)
	if rs == nil {
		return nil
	}
	return rs.Ranges()
}

// AppendRanges appends one process's normalized ranges to dst and returns
// the extended slice; the snapshot codec reuses one scratch buffer across
// processes instead of copying each set.
func (s *IdealStore) AppendRanges(pid uint32, dst []mem.Range) []mem.Range {
	rs := s.set(pid, false)
	if rs == nil {
		return dst
	}
	return rs.AppendRanges(dst)
}
