package core

import (
	"repro/internal/cpu"
	"repro/internal/mem"
)

// Ports models Figure 5's software command path: "PIFT software module
// sends commands and receives responses through an array of memory-mapped
// ports of PIFT HW" — source registration, sink queries, and configuration
// (parameter setting NT and NI) all travel over ordinary stores to a small
// register window, which the hardware module snoops off the same bus the
// front-end events arrive on.
//
// Register layout (word offsets from Base):
//
//	+0x00  START   range start address
//	+0x04  END     range end address (inclusive)
//	+0x08  CMD     command doorbell: writing executes the command
//	+0x0c  RESULT  hardware response (taint query answer)
//
// Ports wraps a Tracker as a cpu.EventSink: stores inside the window are
// consumed as commands (they never reach the taint heuristic); everything
// else is forwarded untouched.
type Ports struct {
	Base    mem.Addr
	Mem     *mem.Memory
	Tracker *Tracker
}

// Port register offsets and commands.
const (
	PortStart  = 0x00
	PortEnd    = 0x04
	PortCmd    = 0x08
	PortResult = 0x0c
	portSize   = 0x10

	// CmdRegister taints [START, END] for the writing process.
	CmdRegister uint32 = 1
	// CmdCheck queries [START, END] and writes 1/0 to RESULT.
	CmdCheck uint32 = 2
	// CmdSetNI / CmdSetNT reconfigure the tainting window; the new value
	// is taken from START.
	CmdSetNI uint32 = 3
	CmdSetNT uint32 = 4
)

// NewPorts builds a port window at base over the tracker.
func NewPorts(base mem.Addr, m *mem.Memory, tracker *Tracker) *Ports {
	return &Ports{Base: base, Mem: m, Tracker: tracker}
}

// window returns the full port range.
func (p *Ports) window() mem.Range {
	return mem.Range{Start: p.Base, End: p.Base + portSize - 1}
}

// Event implements cpu.EventSink.
func (p *Ports) Event(ev cpu.Event) {
	if (ev.Kind == cpu.EvStore || ev.Kind == cpu.EvLoad) && ev.Range.Overlaps(p.window()) {
		// Port traffic: never part of the tracked data stream.
		if ev.Kind == cpu.EvStore && ev.Range.Contains(p.Base+PortCmd) {
			p.execute(ev)
		}
		return
	}
	p.Tracker.Event(ev)
}

// execute runs the doorbelled command. The data values were already written
// to memory by the time the bus event arrives, so the hardware reads its
// registers directly.
func (p *Ports) execute(ev cpu.Event) {
	start := p.Mem.Load32(p.Base + PortStart)
	end := p.Mem.Load32(p.Base + PortEnd)
	rg := mem.Range{Start: start, End: end}
	switch p.Mem.Load32(p.Base + PortCmd) {
	case CmdRegister:
		p.Tracker.Event(cpu.Event{
			Kind: cpu.EvSourceRegister, PID: ev.PID, Seq: ev.Seq, Range: rg,
		})
	case CmdCheck:
		var result uint32
		if p.Tracker.Check(ev.PID, rg) {
			result = 1
		}
		p.Mem.Store32(p.Base+PortResult, result)
	case CmdSetNI:
		cfg := p.Tracker.Config()
		cfg.NI = uint64(start)
		p.Tracker.SetConfig(cfg)
	case CmdSetNT:
		cfg := p.Tracker.Config()
		cfg.NT = int(start)
		p.Tracker.SetConfig(cfg)
	}
}
