package core

import (
	"repro/internal/mem"
)

// MondrianStore is the multi-level address-space-partitioning alternative
// the paper points to in §3.3: "Witchel et al. [20] presents a multi-level
// address space partitioning method that can associate an arbitrary range
// with a tag by a series of power-of-two sized ranges."
//
// Taint is held in a 4-ary trie over the 32-bit address space (16 levels of
// 2 bits). A fully tainted subtree collapses into a single leaf, so large
// ranges cost O(log n) nodes, and lookup walks at most 16 levels —
// the hardware analogue being a Mondrian-style multi-level permissions
// table. Unlike the fixed-granularity word store it is exact to the byte;
// unlike the linear range cache its lookup cost is bounded by depth rather
// than entry count.
type MondrianStore struct {
	roots map[uint32]*mondNode
}

type mondState uint8

const (
	mondClean mondState = iota
	mondTainted
	mondMixed
)

type mondNode struct {
	state mondState
	kids  *[4]*mondNode // non-nil iff state == mondMixed
}

const (
	mondBits   = 2
	mondLevels = 16 // 16 levels × 2 bits = 32-bit address space
)

// NewMondrianStore returns an empty store.
func NewMondrianStore() *MondrianStore {
	return &MondrianStore{roots: make(map[uint32]*mondNode)}
}

func (s *MondrianStore) root(pid uint32, create bool) *mondNode {
	n := s.roots[pid]
	if n == nil && create {
		n = &mondNode{}
		s.roots[pid] = n
	}
	return n
}

// childSpan returns the byte span one child covers at the given level
// (level 0 = root).
func childSpan(level int) uint64 {
	return 1 << (mondBits * (mondLevels - level - 1))
}

// mondSet marks [start, end] within the node covering [base, base+span-1]
// as tainted (v=true) or clean (v=false). It returns the node's resulting
// state so parents can coalesce.
func mondSet(n *mondNode, level int, base uint64, start, end uint64, v bool) mondState {
	span := uint64(1) << (mondBits * (mondLevels - level))
	nodeEnd := base + span - 1
	// Full coverage: collapse.
	if start <= base && end >= nodeEnd {
		n.kids = nil
		if v {
			n.state = mondTainted
		} else {
			n.state = mondClean
		}
		return n.state
	}
	// Partial coverage: expand uniform nodes into children first.
	if n.kids == nil {
		uniform := n.state
		if (uniform == mondTainted) == v {
			return n.state // already uniformly at the target value
		}
		n.kids = new([4]*mondNode)
		for i := range n.kids {
			n.kids[i] = &mondNode{state: uniform}
		}
		n.state = mondMixed
	}
	cs := childSpan(level)
	for i := 0; i < 4; i++ {
		cb := base + uint64(i)*cs
		ce := cb + cs - 1
		if end < cb || start > ce {
			continue
		}
		mondSet(n.kids[i], level+1, cb, start, end, v)
	}
	// Coalesce if all children agree.
	first := n.kids[0].state
	if first != mondMixed {
		same := true
		for i := 1; i < 4; i++ {
			if n.kids[i].state != first {
				same = false
				break
			}
		}
		if same {
			n.state = first
			n.kids = nil
			return n.state
		}
	}
	n.state = mondMixed
	return n.state
}

// mondOverlaps reports whether any byte of [start, end] is tainted under n.
func mondOverlaps(n *mondNode, level int, base uint64, start, end uint64) bool {
	switch n.state {
	case mondClean:
		return false
	case mondTainted:
		return true
	}
	cs := childSpan(level)
	for i := 0; i < 4; i++ {
		cb := base + uint64(i)*cs
		ce := cb + cs - 1
		if end < cb || start > ce {
			continue
		}
		if mondOverlaps(n.kids[i], level+1, cb, start, end) {
			return true
		}
	}
	return false
}

// mondCount tallies (nodes, taintedBytes) under n.
func mondCount(n *mondNode, level int) (nodes int, bytes uint64) {
	nodes = 1
	switch n.state {
	case mondTainted:
		bytes = uint64(1) << (mondBits * (mondLevels - level))
	case mondMixed:
		for i := 0; i < 4; i++ {
			cn, cb := mondCount(n.kids[i], level+1)
			nodes += cn
			bytes += cb
		}
	}
	return nodes, bytes
}

// Add implements Store.
func (s *MondrianStore) Add(pid uint32, r mem.Range) {
	mondSet(s.root(pid, true), 0, 0, uint64(r.Start), uint64(r.End), true)
}

// Remove implements Store.
func (s *MondrianStore) Remove(pid uint32, r mem.Range) bool {
	n := s.root(pid, false)
	if n == nil || !mondOverlaps(n, 0, 0, uint64(r.Start), uint64(r.End)) {
		return false
	}
	mondSet(n, 0, 0, uint64(r.Start), uint64(r.End), false)
	return true
}

// Overlaps implements Store.
func (s *MondrianStore) Overlaps(pid uint32, r mem.Range) bool {
	n := s.root(pid, false)
	return n != nil && mondOverlaps(n, 0, 0, uint64(r.Start), uint64(r.End))
}

// RangeCount implements Store; for a trie the natural storage metric is the
// node count.
func (s *MondrianStore) RangeCount() int {
	total := 0
	for _, n := range s.roots {
		c, _ := mondCount(n, 0)
		total += c
	}
	return total
}

// TaintedBytes implements Store (exact).
func (s *MondrianStore) TaintedBytes() uint64 {
	var total uint64
	for _, n := range s.roots {
		_, b := mondCount(n, 0)
		total += b
	}
	return total
}

// Reset implements Store.
func (s *MondrianStore) Reset() {
	s.roots = make(map[uint32]*mondNode)
}
