package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace/tracegen"
)

var partCfg = core.Config{NI: 13, NT: 3, Untaint: true}

func modShard(n int) func(uint32) int {
	return func(pid uint32) int { return int(pid % uint32(n)) }
}

// replaySplit replays events[:cut] sequentially, splits the tracker into
// n shards, replays events[cut:] onto the owning shards, and merges.
func replaySplit(t *testing.T, events []cpu.Event, cut, n int) *core.Tracker {
	t.Helper()
	prefix := core.NewTracker(partCfg, nil)
	for _, ev := range events[:cut] {
		prefix.Event(ev)
	}
	shardOf := modShard(n)
	parts, err := prefix.SplitByPID(n, shardOf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[cut:] {
		parts[shardOf(ev.PID)].Event(ev)
	}
	merged, err := core.MergeTrackers(parts)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestSplitMergeSinglePID: on a single-process stream the merged tracker
// must be byte-identical to the sequential one — canonical snapshot
// bytes, ordered verdicts, full stats including watermarks. This is the
// exactness class every single-PID tenant session lives in.
func TestSplitMergeSinglePID(t *testing.T) {
	events := tracegen.Generate(tracegen.Spec{Seed: 5, Events: 30000, PIDs: 1}).Events
	seq := core.NewTracker(partCfg, nil)
	for _, ev := range events {
		seq.Event(ev)
	}
	merged := replaySplit(t, events, len(events)/2, 4)

	if merged.Stats() != seq.Stats() {
		t.Fatalf("stats diverge:\nmerged %+v\nseq    %+v", merged.Stats(), seq.Stats())
	}
	if !reflect.DeepEqual(merged.Verdicts(), seq.Verdicts()) {
		t.Fatalf("verdicts diverge: %d vs %d", len(merged.Verdicts()), len(seq.Verdicts()))
	}
	var a, b bytes.Buffer
	if _, err := merged.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots diverge: %d vs %d bytes", a.Len(), b.Len())
	}
}

// TestSplitMergeMultiPID: counters are exact under split/replay/merge on
// an interleaved multi-process stream, verdicts match in canonical
// order, and the watermarks obey their documented lower-bound contract.
func TestSplitMergeMultiPID(t *testing.T) {
	events := tracegen.Generate(tracegen.Spec{Seed: 9, Events: 60000, PIDs: 16}).Events
	seq := core.NewTracker(partCfg, nil)
	for _, ev := range events {
		seq.Event(ev)
	}
	for _, cut := range []int{0, 1, 17, len(events) / 3, len(events) - 1, len(events)} {
		for _, n := range []int{1, 2, 4, 7} {
			merged := replaySplit(t, events, cut, n)
			ms, ss := merged.Stats(), seq.Stats()
			// Neutralize the watermarks, compare everything else exactly.
			ms.MaxBytes, ms.MaxRanges = 0, 0
			wm := seq.Stats()
			ss.MaxBytes, ss.MaxRanges = 0, 0
			if ms != ss {
				t.Fatalf("cut=%d n=%d: counters diverge:\nmerged %+v\nseq    %+v", cut, n, ms, ss)
			}
			got := merged.Stats()
			if got.MaxBytes > wm.MaxBytes || got.MaxRanges > wm.MaxRanges || got.MaxBytes == 0 {
				t.Fatalf("cut=%d n=%d: watermark out of range: merged %d/%d vs seq %d/%d",
					cut, n, got.MaxBytes, got.MaxRanges, wm.MaxBytes, wm.MaxRanges)
			}
			want := append([]core.SinkVerdict(nil), seq.Verdicts()...)
			core.SortVerdicts(want)
			if !reflect.DeepEqual(merged.Verdicts(), want) {
				t.Fatalf("cut=%d n=%d: verdicts diverge", cut, n)
			}
		}
	}
}

// boundedStore is a non-ideal Store: SplitByPID and MergeTrackers must
// refuse it rather than partition approximately.
type boundedStore struct{ core.Store }

func (boundedStore) Add(uint32, mem.Range) {}

func TestSplitErrors(t *testing.T) {
	tr := core.NewTracker(partCfg, nil)
	if _, err := tr.SplitByPID(0, modShard(1)); err == nil {
		t.Fatal("split into 0 shards succeeded")
	}
	tr.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 3, Range: mem.Range{Start: 0, End: 8}})
	if _, err := tr.SplitByPID(2, func(uint32) int { return 9 }); err == nil {
		t.Fatal("out-of-range shard function not rejected")
	}
	bad := core.NewTracker(partCfg, boundedStore{})
	if _, err := bad.SplitByPID(2, modShard(2)); err == nil {
		t.Fatal("non-ideal store not rejected")
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := core.MergeTrackers(nil); err == nil {
		t.Fatal("merge of zero trackers succeeded")
	}
	a := core.NewTracker(partCfg, nil)
	b := core.NewTracker(core.Config{NI: 7, NT: 2}, nil)
	if _, err := core.MergeTrackers([]*core.Tracker{a, b}); err == nil {
		t.Fatal("config mismatch not rejected")
	}
	// The same PID holding taint in two shards violates disjointness.
	c := core.NewTracker(partCfg, nil)
	d := core.NewTracker(partCfg, nil)
	ev := cpu.Event{Kind: cpu.EvSourceRegister, PID: 5, Range: mem.Range{Start: 0, End: 8}}
	c.Event(ev)
	d.Event(ev)
	if _, err := core.MergeTrackers([]*core.Tracker{c, d}); err == nil {
		t.Fatal("duplicate-PID merge not rejected")
	}
}
