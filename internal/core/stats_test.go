package core

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func TestStatsMerge(t *testing.T) {
	tests := []struct {
		name string
		dst  Stats
		src  Stats
		want Stats
	}{
		{
			name: "zero into zero",
		},
		{
			name: "zero absorbs other",
			src:  Stats{Loads: 3, Stores: 2, MaxBytes: 10, MaxRanges: 4},
			want: Stats{Loads: 3, Stores: 2, MaxBytes: 10, MaxRanges: 4},
		},
		{
			name: "counters sum",
			dst: Stats{
				Loads: 1, Stores: 2, TaintedLoads: 3, TaintOps: 4,
				UntaintOps: 5, SourceRegs: 6, SinkChecks: 7, TaintedSinks: 8,
			},
			src: Stats{
				Loads: 10, Stores: 20, TaintedLoads: 30, TaintOps: 40,
				UntaintOps: 50, SourceRegs: 60, SinkChecks: 70, TaintedSinks: 80,
			},
			want: Stats{
				Loads: 11, Stores: 22, TaintedLoads: 33, TaintOps: 44,
				UntaintOps: 55, SourceRegs: 66, SinkChecks: 77, TaintedSinks: 88,
			},
		},
		{
			name: "watermarks max, not sum — dst higher",
			dst:  Stats{MaxBytes: 100, MaxRanges: 9},
			src:  Stats{MaxBytes: 40, MaxRanges: 3},
			want: Stats{MaxBytes: 100, MaxRanges: 9},
		},
		{
			name: "watermarks max, not sum — src higher",
			dst:  Stats{MaxBytes: 40, MaxRanges: 3},
			src:  Stats{MaxBytes: 100, MaxRanges: 9},
			want: Stats{MaxBytes: 100, MaxRanges: 9},
		},
		{
			name: "mixed: counters sum while watermarks max independently",
			dst:  Stats{Loads: 5, MaxBytes: 64, MaxRanges: 2},
			src:  Stats{Loads: 7, MaxBytes: 32, MaxRanges: 6},
			want: Stats{Loads: 12, MaxBytes: 64, MaxRanges: 6},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.dst
			got.Merge(tt.src)
			if got != tt.want {
				t.Fatalf("Merge = %+v, want %+v", got, tt.want)
			}
		})
	}
}

// windowStream builds a three-process stream that exercises tainted
// loads, propagation, untainting, and sink checks in every process.
func windowStream() []cpu.Event {
	var evs []cpu.Event
	for pid := uint32(1); pid <= 3; pid++ {
		base := mem.Addr(0x1000 * uint32(pid))
		evs = append(evs,
			source(pid, base, 8),
			load(pid, 1, base, 4),         // tainted load: opens window
			store(pid, 2, base+0x100, 4),  // propagates
			store(pid, 3, base+0x200, 4),  // propagates (NT=2 budget)
			store(pid, 4, base+0x300, 4),  // budget exhausted: untaints (miss)
			load(pid, 10, base+0x800, 4),  // clean load
			store(pid, 11, base+0x100, 4), // outside window: real untaint
			cpu.Event{Kind: cpu.EvSinkCheck, PID: pid, Seq: 12,
				Range: mem.MakeRange(base+0x200, 4), Tag: int(pid)},
		)
	}
	// Interleave processes so the stream is not PID-sorted.
	var out []cpu.Event
	per := len(evs) / 3
	for i := 0; i < per; i++ {
		for p := 0; p < 3; p++ {
			out = append(out, evs[p*per+i])
		}
	}
	return out
}

// TestStatsMergeMatchesSharding checks the semantic claim Merge is built
// on: a tracker over the whole stream and trackers over per-PID shards
// produce the same summed counters.
func TestStatsMergeMatchesSharding(t *testing.T) {
	evs := windowStream()
	cfg := Config{NI: 4, NT: 2, Untaint: true}

	whole := NewTracker(cfg, nil)
	for _, ev := range evs {
		whole.Event(ev)
	}

	shards := map[uint32]*Tracker{}
	for _, ev := range evs {
		tr := shards[ev.PID]
		if tr == nil {
			tr = NewTracker(cfg, nil)
			shards[ev.PID] = tr
		}
		tr.Event(ev)
	}
	var merged Stats
	for _, tr := range shards {
		merged.Merge(tr.Stats())
	}

	want := whole.Stats()
	// Counters must match exactly; watermarks are per-shard maxima, so
	// compare them separately as a lower bound.
	cmp := merged
	cmp.MaxBytes, cmp.MaxRanges = want.MaxBytes, want.MaxRanges
	if cmp != want {
		t.Fatalf("sharded counters %+v, want %+v", merged, want)
	}
	if merged.MaxBytes > want.MaxBytes || merged.MaxRanges > want.MaxRanges {
		t.Fatalf("sharded watermarks %d/%d exceed sequential %d/%d",
			merged.MaxBytes, merged.MaxRanges, want.MaxBytes, want.MaxRanges)
	}
}

func TestSortVerdicts(t *testing.T) {
	vs := []SinkVerdict{
		{Tag: 3, PID: 2, Seq: 10, Tainted: true},
		{Tag: 2, PID: 1, Seq: 20},
		{Tag: 1, PID: 1, Seq: 5, Tainted: true},
		{Tag: 5, PID: 1, Seq: 5},
		{Tag: 4, PID: 2, Seq: 1},
	}
	SortVerdicts(vs)
	want := []SinkVerdict{
		{Tag: 1, PID: 1, Seq: 5, Tainted: true},
		{Tag: 5, PID: 1, Seq: 5},
		{Tag: 2, PID: 1, Seq: 20},
		{Tag: 4, PID: 2, Seq: 1},
		{Tag: 3, PID: 2, Seq: 10, Tainted: true},
	}
	if !reflect.DeepEqual(vs, want) {
		t.Fatalf("SortVerdicts = %+v, want %+v", vs, want)
	}
}
