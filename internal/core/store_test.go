package core

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

func TestIdealStoreBasics(t *testing.T) {
	s := NewIdealStore()
	s.Add(1, mem.MakeRange(0x100, 8))
	s.Add(1, mem.MakeRange(0x200, 8))
	s.Add(2, mem.MakeRange(0x100, 4))
	if !s.Overlaps(1, mem.MakeRange(0x104, 2)) {
		t.Error("overlap missed")
	}
	if s.Overlaps(2, mem.MakeRange(0x200, 8)) {
		t.Error("cross-pid overlap")
	}
	if s.RangeCount() != 3 || s.TaintedBytes() != 20 {
		t.Fatalf("count=%d bytes=%d", s.RangeCount(), s.TaintedBytes())
	}
	if !s.Remove(1, mem.MakeRange(0x100, 8)) {
		t.Error("remove of tainted range returned false")
	}
	if s.Remove(1, mem.MakeRange(0x900, 8)) {
		t.Error("remove of clean range returned true")
	}
	s.Reset()
	if s.RangeCount() != 0 {
		t.Error("reset failed")
	}
}

func TestRangeCacheHitAndMerge(t *testing.T) {
	c := NewRangeCache(4, EvictLRU)
	c.Add(1, mem.MakeRange(0x100, 8))
	c.Add(1, mem.MakeRange(0x108, 8)) // adjacent → coalesce
	if c.RangeCount() != 1 {
		t.Fatalf("coalesce failed: %d entries", c.RangeCount())
	}
	if c.TaintedBytes() != 16 {
		t.Fatalf("bytes = %d", c.TaintedBytes())
	}
	if !c.Overlaps(1, mem.MakeRange(0x10f, 1)) {
		t.Error("lookup missed")
	}
	if c.Overlaps(2, mem.MakeRange(0x100, 8)) {
		t.Error("PID tag ignored")
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRangeCacheLRUEviction(t *testing.T) {
	c := NewRangeCache(2, EvictLRU)
	c.Add(1, mem.MakeRange(0x100, 4))
	c.Add(1, mem.MakeRange(0x200, 4))
	c.Overlaps(1, mem.MakeRange(0x100, 4)) // touch first → second is LRU
	c.Add(1, mem.MakeRange(0x300, 4))      // evicts 0x200 to backing
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
	// The evicted range must still be findable (secondary storage).
	if !c.Overlaps(1, mem.MakeRange(0x200, 4)) {
		t.Error("evicted range lost")
	}
	if c.Stats().BackingHits != 1 {
		t.Fatalf("backing hits = %d", c.Stats().BackingHits)
	}
	// Nothing lost overall.
	if c.TaintedBytes() != 12 {
		t.Fatalf("total bytes = %d", c.TaintedBytes())
	}
}

func TestRangeCacheDropPolicy(t *testing.T) {
	c := NewRangeCache(2, EvictDrop)
	c.Add(1, mem.MakeRange(0x100, 4))
	c.Add(1, mem.MakeRange(0x200, 4))
	c.Add(1, mem.MakeRange(0x300, 4)) // dropped
	if c.Stats().Drops != 1 {
		t.Fatalf("drops = %d", c.Stats().Drops)
	}
	if c.Overlaps(1, mem.MakeRange(0x300, 4)) {
		t.Error("dropped range should be lost (possible false negative)")
	}
	if c.RangeCount() != 2 {
		t.Fatalf("count = %d", c.RangeCount())
	}
}

func TestRangeCacheRemoveSplit(t *testing.T) {
	c := NewRangeCache(4, EvictLRU)
	c.Add(1, mem.MakeRange(0x100, 0x100))
	if !c.Remove(1, mem.MakeRange(0x140, 0x10)) {
		t.Fatal("remove returned false")
	}
	if c.RangeCount() != 2 {
		t.Fatalf("split produced %d entries", c.RangeCount())
	}
	if c.Overlaps(1, mem.MakeRange(0x140, 0x10)) {
		t.Error("hole still tainted")
	}
	if !c.Overlaps(1, mem.MakeRange(0x100, 0x40)) || !c.Overlaps(1, mem.MakeRange(0x150, 0xb0)) {
		t.Error("split lost surviving taint")
	}
	if c.TaintedBytes() != 0x100-0x10 {
		t.Fatalf("bytes after split = %d", c.TaintedBytes())
	}
}

func TestRangeCacheBytesSizing(t *testing.T) {
	c := NewRangeCacheBytes(32*1024, EvictLRU)
	// §3.3: "a small on-chip memory, for example, of 32KB can accommodate
	// approximately 2730 ranges".
	if c.Capacity() != 2730 {
		t.Fatalf("32KB capacity = %d entries, want 2730", c.Capacity())
	}
}

func TestWordStoreGranularity(t *testing.T) {
	s := NewWordStore(2) // 4-byte blocks
	s.Add(1, mem.MakeRange(0x102, 1))
	// The whole containing word is tainted.
	if !s.Overlaps(1, mem.MakeRange(0x100, 1)) {
		t.Error("block-mate byte should appear tainted (over-taint)")
	}
	if s.Overlaps(1, mem.MakeRange(0x104, 1)) {
		t.Error("next block must be clean")
	}
	if s.TaintedBytes() != 4 || s.RangeCount() != 1 {
		t.Fatalf("bytes=%d count=%d", s.TaintedBytes(), s.RangeCount())
	}
	// A range spanning blocks taints each.
	s.Add(1, mem.MakeRange(0x1fe, 4))
	if s.RangeCount() != 3 {
		t.Fatalf("span count = %d", s.RangeCount())
	}
	if !s.Remove(1, mem.MakeRange(0x200, 1)) {
		t.Error("remove missed block")
	}
	if s.Overlaps(1, mem.MakeRange(0x201, 1)) {
		t.Error("whole-block remove must clear block-mates (under-taint)")
	}
}

// TestStoresAgree cross-checks the three Store implementations on a random
// workload where the cache is large enough never to evict: they must give
// identical query answers at matching granularity (word store compared at
// its own block granularity).
func TestStoresAgree(t *testing.T) {
	ideal := NewIdealStore()
	cache := NewRangeCache(4096, EvictLRU)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := mem.MakeRange(mem.Addr(rng.Intn(4096)), uint32(rng.Intn(16)+1))
		pid := uint32(rng.Intn(3))
		switch rng.Intn(3) {
		case 0:
			ideal.Add(pid, r)
			cache.Add(pid, r)
		case 1:
			ideal.Remove(pid, r)
			cache.Remove(pid, r)
		case 2:
			if ideal.Overlaps(pid, r) != cache.Overlaps(pid, r) {
				t.Fatalf("step %d: ideal and cache disagree on %v pid %d", i, r, pid)
			}
		}
	}
	if ideal.TaintedBytes() != cache.TaintedBytes() {
		t.Fatalf("bytes: ideal=%d cache=%d", ideal.TaintedBytes(), cache.TaintedBytes())
	}
}
