package core

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/cpu"
	"repro/internal/mem"
)

const portBase mem.Addr = 0xf000_0000

// portProgram drives the hardware entirely from native code: register a
// source range, copy a word of it (load→store within the window), then
// query the copy through the CHECK port.
func portProgram(t *testing.T) (*cpu.Machine, *cpu.Proc, *Tracker) {
	t.Helper()
	a := arm.NewAssembler(0x1000)
	a.Emit(
		arm.MovImm(arm.R8, portImm()),
		// Register [0x5000, 0x500f] as a source.
		arm.MovImm(arm.R0, 0x5000),
		arm.Str(arm.R0, arm.R8, PortStart),
		arm.MovImm(arm.R0, 0x500f),
		arm.Str(arm.R0, arm.R8, PortEnd),
		arm.MovImm(arm.R0, int32(CmdRegister)),
		arm.Str(arm.R0, arm.R8, PortCmd), // doorbell
		// Copy a sensitive word: tainted load, store at distance 2.
		arm.MovImm(arm.R1, 0x5000),
		arm.MovImm(arm.R2, 0x6000),
		arm.Ldr(arm.R3, arm.R1, 0),
		arm.Nop(),
		arm.Str(arm.R3, arm.R2, 0),
		// Query the copy.
		arm.MovImm(arm.R0, 0x6000),
		arm.Str(arm.R0, arm.R8, PortStart),
		arm.MovImm(arm.R0, 0x6003),
		arm.Str(arm.R0, arm.R8, PortEnd),
		arm.MovImm(arm.R0, int32(CmdCheck)),
		arm.Str(arm.R0, arm.R8, PortCmd),
		// Read the answer back into r9.
		arm.Ldr(arm.R9, arm.R8, PortResult),
		arm.Svc(0),
	)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	machine := cpu.NewMachine()
	tracker := NewTracker(Config{NI: 5, NT: 2, Untaint: true}, nil)
	machine.AttachSink(NewPorts(portBase, machine.Mem, tracker))
	proc := cpu.NewProc(1, &cpu.Image{Base: 0x1000, Code: code}, 0x1000)
	return machine, proc, tracker
}

func TestPortsEndToEnd(t *testing.T) {
	machine, proc, tracker := portProgram(t)
	if _, err := machine.Run(proc, 1000); err != nil {
		t.Fatal(err)
	}
	if proc.State.R[arm.R9] != 1 {
		t.Fatalf("CHECK result = %d, want 1 (taint propagated to the copy)", proc.State.R[arm.R9])
	}
	if !tracker.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Fatal("tracker state inconsistent with port answer")
	}
	// Port traffic itself must never enter the taint state.
	if tracker.Check(1, mem.MakeRange(uint32(portBase), portSize)) {
		t.Fatal("port registers got tainted")
	}
}

func TestPortsCheckMiss(t *testing.T) {
	machine := cpu.NewMachine()
	tracker := NewTracker(Config{NI: 5, NT: 2, Untaint: true}, nil)
	ports := NewPorts(portBase, machine.Mem, tracker)
	machine.AttachSink(ports)

	a := arm.NewAssembler(0x1000)
	a.Emit(
		arm.MovImm(arm.R8, portImm()),
		arm.MovImm(arm.R0, 0x7000),
		arm.Str(arm.R0, arm.R8, PortStart),
		arm.MovImm(arm.R0, 0x7003),
		arm.Str(arm.R0, arm.R8, PortEnd),
		arm.MovImm(arm.R0, int32(CmdCheck)),
		arm.Str(arm.R0, arm.R8, PortCmd),
		arm.Ldr(arm.R9, arm.R8, PortResult),
		arm.Svc(0),
	)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	proc := cpu.NewProc(1, &cpu.Image{Base: 0x1000, Code: code}, 0x1000)
	if _, err := machine.Run(proc, 100); err != nil {
		t.Fatal(err)
	}
	if proc.State.R[arm.R9] != 0 {
		t.Fatalf("CHECK of clean range = %d", proc.State.R[arm.R9])
	}
}

func TestPortsReconfigure(t *testing.T) {
	m := mem.NewMemory()
	tracker := NewTracker(Config{NI: 5, NT: 2, Untaint: true}, nil)
	ports := NewPorts(portBase, m, tracker)

	// Software sets NI=13 then NT=3 through the ports.
	m.Store32(portBase+PortStart, 13)
	m.Store32(portBase+PortCmd, CmdSetNI)
	ports.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: 1,
		Range: mem.MakeRange(portBase+PortCmd, 4)})
	m.Store32(portBase+PortStart, 3)
	m.Store32(portBase+PortCmd, CmdSetNT)
	ports.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: 2,
		Range: mem.MakeRange(portBase+PortCmd, 4)})

	if cfg := tracker.Config(); cfg.NI != 13 || cfg.NT != 3 {
		t.Fatalf("reconfigured to %v", cfg)
	}
}

func TestSetConfigRejectsInvalid(t *testing.T) {
	tracker := NewTracker(Config{NI: 5, NT: 2}, nil)
	if err := tracker.SetConfig(Config{NI: 0, NT: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if tracker.Config().NI != 5 {
		t.Fatal("failed SetConfig mutated the tracker")
	}
}

func TestPortsForwardOrdinaryTraffic(t *testing.T) {
	m := mem.NewMemory()
	tracker := NewTracker(Config{NI: 5, NT: 2, Untaint: true}, nil)
	ports := NewPorts(portBase, m, tracker)
	ports.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 1, Seq: 0,
		Range: mem.MakeRange(0x100, 4)})
	ports.Event(cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: 10,
		Range: mem.MakeRange(0x100, 4)})
	ports.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: 12,
		Range: mem.MakeRange(0x200, 4)})
	if !tracker.Check(1, mem.MakeRange(0x200, 4)) {
		t.Fatal("ordinary events not forwarded through the ports")
	}
}

// portImm converts the (high) port base to the signed immediate MovImm
// carries; the ALU's mod-2^32 arithmetic recovers it.
func portImm() int32 {
	pb := portBase
	return int32(pb)
}
