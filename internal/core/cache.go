package core

import (
	"fmt"

	"repro/internal/mem"
)

// EvictPolicy selects what the range-cache hardware does when a new entry
// must be stored and every slot is valid (paper §3.3).
type EvictPolicy uint8

const (
	// EvictLRU writes the least-recently-used entry back to a secondary
	// store in main memory, "as in [17]"; lookups that miss on chip then
	// consult the secondary store (modeled as a backing IdealStore, with
	// the miss counted).
	EvictLRU EvictPolicy = iota
	// EvictDrop simply discards the new range: "the latter case does not
	// exhibit a performance overhead, however it may increase the
	// possibility of false negative".
	EvictDrop
)

func (p EvictPolicy) String() string {
	switch p {
	case EvictLRU:
		return "lru"
	case EvictDrop:
		return "drop"
	}
	return "policy?"
}

// CacheStats counts the range-cache traffic, the basis of the paper's
// overhead argument (on-chip hits are constant-time; secondary-storage
// accesses are the "cache miss" delays of §3.3).
type CacheStats struct {
	Lookups     uint64
	Hits        uint64
	BackingHits uint64 // missed on chip, found in secondary storage
	Evictions   uint64 // entries written back to secondary storage
	Drops       uint64 // entries discarded (EvictDrop)
}

// cacheEntry mirrors one row of Figure 6: process ID, start, end, valid,
// plus the LRU clock the replacement policy needs.
type cacheEntry struct {
	pid     uint32
	r       mem.Range
	valid   bool
	lastUse uint64
}

// RangeCache models the on-chip taint storage of Figure 6: a fixed number
// of arbitrary-length range entries searched in parallel. Each entry costs
// 12 bytes (start, end, PID) as computed in §3.3, so the paper's example
// 32 KiB memory holds ~2730 entries.
type RangeCache struct {
	entries []cacheEntry
	policy  EvictPolicy
	backing *IdealStore // secondary storage for EvictLRU; nil for EvictDrop
	clock   uint64
	stats   CacheStats
}

// EntryBytes is the on-chip cost of one range entry (4-byte start and end
// addresses plus 4-byte process ID; the valid bit is not counted, §3.3).
const EntryBytes = 12

// NewRangeCache builds a cache with the given number of entries.
func NewRangeCache(capacity int, policy EvictPolicy) *RangeCache {
	if capacity < 1 {
		panic(fmt.Sprintf("core: range cache capacity %d", capacity))
	}
	c := &RangeCache{
		entries: make([]cacheEntry, capacity),
		policy:  policy,
	}
	if policy == EvictLRU {
		c.backing = NewIdealStore()
	}
	return c
}

// NewRangeCacheBytes sizes the cache from an on-chip memory budget, e.g.
// 32*1024 → 2730 entries as in the paper.
func NewRangeCacheBytes(budget int, policy EvictPolicy) *RangeCache {
	return NewRangeCache(budget/EntryBytes, policy)
}

// Capacity returns the number of entry slots.
func (c *RangeCache) Capacity() int { return len(c.entries) }

// Stats returns a snapshot of the traffic counters.
func (c *RangeCache) Stats() CacheStats { return c.stats }

// Overlaps implements Store: the parallel lookup of Figure 6. An entry hits
// when it is valid, carries the same process ID, and its range overlaps the
// query.
func (c *RangeCache) Overlaps(pid uint32, r mem.Range) bool {
	c.stats.Lookups++
	c.clock++
	hit := false
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.pid == pid && e.r.Overlaps(r) {
			e.lastUse = c.clock
			hit = true
		}
	}
	if hit {
		c.stats.Hits++
		return true
	}
	if c.backing != nil && c.backing.Overlaps(pid, r) {
		c.stats.BackingHits++
		return true
	}
	return false
}

// Add implements Store. Overlapping or adjacent same-process entries are
// coalesced into the new range so the cache stays canonical, then the
// result is stored, evicting per policy when no slot is free.
func (c *RangeCache) Add(pid uint32, r mem.Range) {
	c.clock++
	merged := r
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.pid == pid && (e.r.Overlaps(merged) || e.r.Adjacent(merged)) {
			merged = merged.Union(e.r)
			e.valid = false
		}
	}
	if c.backing != nil {
		// Keep secondary storage consistent: the merged region now
		// lives on chip.
		c.backing.Add(pid, merged)
		c.backing.Remove(pid, merged)
	}
	c.insert(cacheEntry{pid: pid, r: merged, valid: true, lastUse: c.clock})
}

func (c *RangeCache) insert(ne cacheEntry) {
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := range c.entries {
		e := &c.entries[i]
		if !e.valid {
			*e = ne
			return
		}
		if e.lastUse < oldest {
			oldest = e.lastUse
			victim = i
		}
	}
	switch c.policy {
	case EvictLRU:
		v := c.entries[victim]
		c.backing.Add(v.pid, v.r)
		c.stats.Evictions++
		c.entries[victim] = ne
	case EvictDrop:
		c.stats.Drops++
	}
}

// Remove implements Store: untainting shrinks, splits, or invalidates
// overlapping entries. A middle split produces an extra entry, which may
// itself force an eviction — the hardware cost of untainting.
func (c *RangeCache) Remove(pid uint32, r mem.Range) bool {
	c.clock++
	removed := false
	for i := range c.entries {
		e := &c.entries[i]
		if !e.valid || e.pid != pid || !e.r.Overlaps(r) {
			continue
		}
		removed = true
		left, hasLeft := mem.Range{}, false
		right, hasRight := mem.Range{}, false
		if e.r.Start < r.Start {
			left, hasLeft = mem.Range{Start: e.r.Start, End: r.Start - 1}, true
		}
		if e.r.End > r.End {
			right, hasRight = mem.Range{Start: r.End + 1, End: e.r.End}, true
		}
		switch {
		case hasLeft && hasRight:
			e.r = left
			c.insert(cacheEntry{pid: pid, r: right, valid: true, lastUse: c.clock})
		case hasLeft:
			e.r = left
		case hasRight:
			e.r = right
		default:
			e.valid = false
		}
	}
	if c.backing != nil && c.backing.Remove(pid, r) {
		removed = true
	}
	return removed
}

// RangeCount implements Store (on-chip entries plus secondary storage).
func (c *RangeCache) RangeCount() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].valid {
			n++
		}
	}
	if c.backing != nil {
		n += c.backing.RangeCount()
	}
	return n
}

// TaintedBytes implements Store. Entries of one process never overlap (Add
// coalesces), so summation is exact.
func (c *RangeCache) TaintedBytes() uint64 {
	var n uint64
	for i := range c.entries {
		if c.entries[i].valid {
			n += c.entries[i].r.Size()
		}
	}
	if c.backing != nil {
		n += c.backing.TaintedBytes()
	}
	return n
}

// Reset implements Store.
func (c *RangeCache) Reset() {
	for i := range c.entries {
		c.entries[i] = cacheEntry{}
	}
	if c.backing != nil {
		c.backing.Reset()
	}
	c.clock = 0
	c.stats = CacheStats{}
}
