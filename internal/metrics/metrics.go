// Package metrics is the repository's observability substrate: a
// dependency-free registry of atomic counters, gauges, and fixed-bucket
// histograms with Prometheus-text and JSON exposition.
//
// The paper validates PIFT with per-stage event accounting (shadow ops,
// window activity, storage occupancy); at production scale those numbers
// must be live, not one-shot printed tables. Every layer of the stack —
// cpu front end, core tracker, dift oracle, analysis pipeline — registers
// its counters here, and cmd/piftrun serves the registry over HTTP.
//
// Hot-path cost budget: incrementing a counter or setting a gauge is one
// atomic add/store and zero allocations; observing a histogram value is a
// short bucket scan plus two atomic adds. All mutation methods are
// nil-receiver-safe, so instrumentation points can be wired with plain
// struct fields and cost a predicted branch when metrics are disabled.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. A nil receiver reads zero.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrement). Safe on a nil receiver (no-op).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Inc adds one. Safe on a nil receiver (no-op).
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. Safe on a nil receiver (no-op).
func (g *Gauge) Dec() { g.Add(-1) }

// TrackMax raises the gauge to v if v exceeds the current value — the
// high-water-mark pattern (store occupancy, queue depth peaks). Safe on a
// nil receiver (no-op).
func (g *Gauge) TrackMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value. A nil receiver reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution with Prometheus semantics:
// bucket i counts observations ≤ bounds[i], with an implicit +Inf bucket.
// Buckets are non-cumulative internally and cumulated at exposition time,
// so Observe is a bucket scan plus two atomic adds — no allocation, no
// locking.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	// Drop duplicates so exposition never repeats an `le` label.
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
}

// Observe records one sample. NaN observations are dropped. Safe on a nil
// receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations. A nil receiver reads zero.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. A nil receiver reads zero.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts (one per bound, +Inf last),
// the sum, and the count, read without stopping writers. The three reads
// are not a single atomic cut, so under concurrent Observe the parts can
// be skewed by in-flight samples; each part is individually consistent.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.Sum(), h.Count()
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type entry struct {
	name   string // unique registry key; for labeled samples family+labels
	family string // metric name shared by every sample of one family
	labels string // rendered `{key="value"}` suffix, "" for plain metrics
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Registration takes a lock; the returned
// metric objects are lock-free thereafter. Registration is idempotent:
// asking twice for the same name and kind returns the same object, which
// is what lets independently constructed components (pipeline workers,
// repeated experiment runs) share one set of counters.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// sanitizeName maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]* so exposition is always well-formed.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	b := []byte(name)
	for i, ch := range b {
		ok := ch == '_' || ch == ':' ||
			('a' <= ch && ch <= 'z') || ('A' <= ch && ch <= 'Z') ||
			(i > 0 && '0' <= ch && ch <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

func (r *Registry) lookup(name string, kind metricKind) (*entry, string) {
	name = sanitizeName(name)
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e != nil && e.kind == kind {
		return e, name
	}
	return nil, name
}

func (r *Registry) register(name, help string, kind metricKind) *entry {
	e, name := r.lookup(name, kind)
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[name]; e != nil {
		if e.kind == kind {
			return e
		}
		// Same name, different kind: disambiguate rather than fail, so
		// arbitrary (fuzzed) registration sequences stay total.
		name = name + "_" + kindSuffix(kind)
		if e2 := r.entries[name]; e2 != nil && e2.kind == kind {
			return e2
		}
	}
	e = &entry{name: name, family: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	}
	r.entries[name] = e
	return e
}

func kindSuffix(kind metricKind) string {
	switch kind {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "counter"
}

// Counter returns the counter registered under name, creating it with the
// given help text on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use. Later calls ignore the
// bounds argument and return the existing histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e, sname := r.lookup(name, kindHistogram)
	if e != nil {
		return e.h
	}
	e = r.register(sname, help, kindHistogram)
	r.mu.Lock()
	if e.h == nil {
		e.h = newHistogram(bounds)
	}
	r.mu.Unlock()
	return e.h
}

// sorted returns the entries in (family, labels) order — the deterministic
// exposition order both encoders share. Sorting by family first keeps every
// sample of a labeled family adjacent, so the Prometheus encoder can emit
// one HELP/TYPE header per family, as the format requires.
func (r *Registry) sorted() []*entry {
	r.mu.RLock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.RUnlock()
	sort.Slice(es, func(i, j int) bool {
		if es[i].family != es[j].family {
			return es[i].family < es[j].family
		}
		return es[i].labels < es[j].labels
	})
	return es
}

// LatencyBuckets is the default bucket layout for second-denominated
// latency histograms: 1µs to ~8s in powers of ~4.
var LatencyBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 8,
}

// CountBuckets is the default layout for small-count distributions
// (events per batch, distances): powers of two to 64k.
var CountBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
}
