package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file renders a registry in the two formats the stack consumes:
// Prometheus text exposition (scraped from piftrun's /metrics endpoint)
// and JSON (embedded in piftbench's BENCH_pipeline.json perf artifact).
// Both render entries in sorted-name order, so output is deterministic
// for a quiescent registry.

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects (+Inf/-Inf/NaN
// spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, entries sorted by (family, labels). Labeled samples of one
// family share a single HELP/TYPE header, per the format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for i, e := range r.sorted() {
		if i == 0 || e.family != prevFamily {
			prevFamily = e.family
			bw.WriteString("# HELP ")
			bw.WriteString(e.family)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(e.help))
			bw.WriteByte('\n')
			bw.WriteString("# TYPE ")
			bw.WriteString(e.family)
			bw.WriteByte(' ')
			bw.WriteString(kindSuffix(e.kind))
			bw.WriteByte('\n')
		}
		switch e.kind {
		case kindCounter:
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(e.c.Value(), 10))
			bw.WriteByte('\n')
		case kindGauge:
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(e.g.Value(), 10))
			bw.WriteByte('\n')
		case kindHistogram:
			if e.h == nil {
				continue
			}
			cum, sum, count := e.h.snapshot()
			for i, c := range cum {
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = formatFloat(e.h.bounds[i])
				}
				bw.WriteString(e.name)
				bw.WriteString(`_bucket{le="`)
				bw.WriteString(le)
				bw.WriteString(`"} `)
				bw.WriteString(strconv.FormatUint(c, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(e.name)
			bw.WriteString("_sum ")
			bw.WriteString(formatFloat(sum))
			bw.WriteByte('\n')
			bw.WriteString(e.name)
			bw.WriteString("_count ")
			bw.WriteString(strconv.FormatUint(count, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// HistogramSnapshot is the JSON shape of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"` // upper bounds; +Inf bucket implied
	Counts []uint64  `json:"counts"` // cumulative, len(Bounds)+1
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot captures every metric's current value into plain maps, the
// shape piftbench embeds in its benchmark artifact. Map keys marshal in
// sorted order, so the JSON is deterministic for a quiescent registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads the whole registry. Writers are not stopped; each value
// is an atomic read.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.c.Value()
		case kindGauge:
			s.Gauges[e.name] = e.g.Value()
		case kindHistogram:
			if e.h == nil {
				continue
			}
			cum, sum, count := e.h.snapshot()
			if math.IsInf(sum, 0) || math.IsNaN(sum) {
				sum = 0 // JSON has no Inf/NaN literal; zero an impossible sum
			}
			s.Histograms[e.name] = HistogramSnapshot{
				Bounds: append([]float64(nil), e.h.bounds...),
				Counts: cum,
				Sum:    sum,
				Count:  count,
			}
		}
	}
	return s
}

// WriteJSON renders the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
