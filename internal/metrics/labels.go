package metrics

import (
	"strings"
	"sync"
)

// Labeled series. A Vec is a family of counters or gauges that share one
// metric name and differ in a single label value — the shape per-tenant
// serving metrics need (`pift_server_bytes_ingested{tenant="t42"}`)
// without ad-hoc name formatting at every call site.
//
// Design constraints, in order:
//
//   - The mutation hot path is the plain Counter/Gauge returned by With:
//     one atomic op, zero allocations, nil-receiver-safe. Call sites that
//     ingest millions of events per tenant resolve With once per session
//     and keep the pointer.
//   - With itself is allocation-free after a label's first use (an RLock
//     and one map probe), so even naive per-request resolution stays off
//     the allocator.
//   - Registration is idempotent at the registry level: every Vec over
//     the same registry and family hands out the same underlying metric
//     for the same label value, exactly like Registry.Counter does for
//     plain names.
//
// Exposition renders a family's HELP/TYPE header once, followed by one
// `name{key="value"}` sample per label value, in sorted order.

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelSuffix renders the `{key="value"}` sample suffix. The key is
// sanitized onto the metric-name alphabet; the value is escaped.
func labelSuffix(key, value string) string {
	return "{" + sanitizeName(key) + `="` + escapeLabelValue(value) + `"}`
}

// CounterVec is a labeled counter family. The zero of *CounterVec (nil) is
// a valid disabled vec: With returns a nil *Counter, whose methods no-op.
type CounterVec struct {
	r      *Registry
	family string
	help   string
	key    string

	mu sync.RWMutex
	m  map[string]*Counter
}

// CounterVec returns the labeled counter family registered under name with
// the given label key, creating it on first use. The family name occupies
// the registry's namespace like a plain metric name does.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{
		r:      r,
		family: sanitizeName(name),
		help:   help,
		key:    labelKey,
		m:      make(map[string]*Counter),
	}
}

// With returns the counter for one label value, registering it on first
// use. Safe on a nil receiver (returns a nil, no-op counter).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	c = v.r.labeledCounter(v.family, v.help, v.key, value)
	v.mu.Lock()
	if have := v.m[value]; have != nil {
		c = have
	} else {
		v.m[value] = c
	}
	v.mu.Unlock()
	return c
}

// GaugeVec is a labeled gauge family; see CounterVec.
type GaugeVec struct {
	r      *Registry
	family string
	help   string
	key    string

	mu sync.RWMutex
	m  map[string]*Gauge
}

// GaugeVec returns the labeled gauge family registered under name with the
// given label key, creating it on first use.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{
		r:      r,
		family: sanitizeName(name),
		help:   help,
		key:    labelKey,
		m:      make(map[string]*Gauge),
	}
}

// With returns the gauge for one label value, registering it on first use.
// Safe on a nil receiver (returns a nil, no-op gauge).
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g := v.m[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	g = v.r.labeledGauge(v.family, v.help, v.key, value)
	v.mu.Lock()
	if have := v.m[value]; have != nil {
		g = have
	} else {
		v.m[value] = g
	}
	v.mu.Unlock()
	return g
}

// labeledCounter registers (or finds) one labeled counter sample.
func (r *Registry) labeledCounter(family, help, key, value string) *Counter {
	return r.registerLabeled(family, help, kindCounter, key, value).c
}

// labeledGauge registers (or finds) one labeled gauge sample.
func (r *Registry) labeledGauge(family, help, key, value string) *Gauge {
	return r.registerLabeled(family, help, kindGauge, key, value).g
}

// registerLabeled is register for labeled samples: the registry key is the
// fully rendered sample name (family plus label suffix), the family is
// remembered separately so exposition can group samples under one
// HELP/TYPE header.
func (r *Registry) registerLabeled(family, help string, kind metricKind, key, value string) *entry {
	labels := labelSuffix(key, value)
	name := family + labels
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e != nil && e.kind == kind {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[name]; e != nil {
		if e.kind == kind {
			return e
		}
		// Same sample, different kind: disambiguate the family the same
		// way register does for plain names, so registration stays total.
		family = family + "_" + kindSuffix(kind)
		name = family + labels
		if e2 := r.entries[name]; e2 != nil && e2.kind == kind {
			return e2
		}
	}
	e = &entry{name: name, family: family, labels: labels, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	}
	r.entries[name] = e
	return e
}
