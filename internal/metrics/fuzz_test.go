package metrics

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"
)

// FuzzExposition drives the registry through an arbitrary sequence of
// registrations and mutations decoded from the fuzz input, then renders
// both exposition formats. Neither may panic, the JSON must parse, and
// every Prometheus line must be well-formed — whatever names, values, and
// bucket layouts the input produced.
func FuzzExposition(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 'a', 0, 1, 'a', 0, 2, 'h', 3})
	f.Add([]byte("\x00name with spaces\x00\x02\x39lead\x00\x01\xffx\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewRegistry()
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			// Pull a NUL-terminated name (bounded so the corpus stays small).
			end := bytes.IndexByte(data, 0)
			if end < 0 || end > 64 {
				end = min(len(data), 64)
			}
			name := string(data[:end])
			data = data[min(end+1, len(data)):]
			var v uint64
			if len(data) >= 8 {
				v = binary.LittleEndian.Uint64(data[:8])
				data = data[8:]
			}
			switch op % 3 {
			case 0:
				r.Counter(name, "fuzzed counter").Add(v % (1 << 32))
			case 1:
				g := r.Gauge(name, "fuzzed gauge")
				g.Set(int64(v))
				g.TrackMax(int64(v >> 1))
			case 2:
				b1 := math.Float64frombits(v)
				h := r.Histogram(name, "fuzzed histogram", []float64{b1, 1, 10, b1 * 2})
				h.Observe(b1)
				h.Observe(float64(v % 100))
			}
		}

		var prom bytes.Buffer
		if err := r.WritePrometheus(&prom); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		checkPrometheus(t, prom.String())

		var js bytes.Buffer
		if err := r.WriteJSON(&js); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !json.Valid(js.Bytes()) {
			t.Fatalf("invalid JSON exposition: %s", js.String())
		}
	})
}
