package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestVecIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	v1 := r.CounterVec("pift_server_bytes", "bytes ingested", "tenant")
	v2 := r.CounterVec("pift_server_bytes", "bytes ingested", "tenant")
	c1 := v1.With("t1")
	c2 := v2.With("t1")
	if c1 != c2 {
		t.Fatal("two vecs over one registry handed out different counters for the same label")
	}
	c1.Add(5)
	if c2.Value() != 5 {
		t.Fatalf("shared counter reads %d, want 5", c2.Value())
	}
	if v1.With("t2") == c1 {
		t.Fatal("distinct label values share a counter")
	}

	g1 := r.GaugeVec("pift_server_state", "session state", "tenant").With("t1")
	g2 := r.GaugeVec("pift_server_state", "session state", "tenant").With("t1")
	if g1 != g2 {
		t.Fatal("gauge vec registration is not idempotent")
	}
}

func TestVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("pift_bytes_total", "bytes per tenant", "tenant")
	v.With("alpha").Add(10)
	v.With("beta").Add(20)
	r.GaugeVec("pift_live", "live flag", "tenant").With(`we"ird\val`).Set(1)
	r.Counter("pift_plain", "unlabeled neighbour").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkPrometheus(t, out)

	for _, want := range []string{
		"# TYPE pift_bytes_total counter",
		`pift_bytes_total{tenant="alpha"} 10`,
		`pift_bytes_total{tenant="beta"} 20`,
		`pift_live{tenant="we\"ird\\val"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family, not per sample.
	if n := strings.Count(out, "# TYPE pift_bytes_total counter"); n != 1 {
		t.Fatalf("family header appears %d times, want 1\n%s", n, out)
	}
	// Samples of one family are adjacent and sorted by label value.
	if strings.Index(out, `tenant="alpha"`) > strings.Index(out, `tenant="beta"`) {
		t.Fatalf("family samples not sorted:\n%s", out)
	}

	// JSON snapshot carries the fully qualified sample names.
	snap := r.Snapshot()
	if snap.Counters[`pift_bytes_total{tenant="alpha"}`] != 10 {
		t.Fatalf("snapshot missing labeled sample: %v", snap.Counters)
	}
}

func TestVecNilSafety(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	cv.With("x").Inc() // must not panic
	gv.With("x").Set(3)
	if cv.With("x").Value() != 0 || gv.With("x").Value() != 0 {
		t.Fatal("nil vec returned live metrics")
	}
}

// TestVecHotPathAllocationFree pins the serving-path budget: after a label
// value's first use, With is lookup-only and the returned counter's
// mutations are plain atomics — zero allocations for both.
func TestVecHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hot", "hot path", "tenant")
	v.With("t9").Inc() // first use allocates the entry; not measured
	if allocs := testing.AllocsPerRun(1000, func() {
		v.With("t9").Add(1)
	}); allocs != 0 {
		t.Fatalf("warm With+Add allocates %.1f/op, want 0", allocs)
	}
}

func TestVecConcurrentFirstUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("racefam", "raced", "tenant")
	var wg sync.WaitGroup
	const goroutines = 32
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.With("same").Inc()
		}()
	}
	wg.Wait()
	if got := v.With("same").Value(); got != goroutines {
		t.Fatalf("racing first-use lost increments: %d, want %d", got, goroutines)
	}
}
