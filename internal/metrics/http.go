package metrics

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// NewServeMux builds the operational endpoint set piftrun -http exposes:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  the same registry as JSON (the artifact shape)
//	/healthz       liveness probe, always 200 "ok"
//	/debug/pprof/  the standard Go profiling endpoints
//
// pprof handlers are attached explicitly rather than through the package's
// DefaultServeMux side effect, so importing this package never mutates
// global state.
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
