package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("events_total", "ignored"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.TrackMax(2) // below current: no change
	g.TrackMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after TrackMax = %d, want 9", got)
	}
}

func TestNilReceiversAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	g.TrackMax(3)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil metrics must read zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", "seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %v, want 556.5", h.Sum())
	}
	cum, _, _ := h.snapshot()
	want := []uint64{2, 3, 4, 5} // ≤1, ≤10, ≤100, +Inf
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], want[i], cum)
		}
	}
}

func TestHistogramBoundNormalization(t *testing.T) {
	h := newHistogram([]float64{10, 1, 10, math.Inf(1), math.NaN(), 5})
	want := []float64{1, 5, 10}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	for i := range want {
		if h.bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", h.bounds, want)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name:x":   "ok_name:x",
		"":            "_",
		"9lead":       "_lead",
		"has space-!": "has_space__",
		"x9":          "x9",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestKindConflictDisambiguates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	if c == nil || g == nil {
		t.Fatal("conflicting registrations must both succeed")
	}
	c.Inc()
	g.Set(-5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x 1\n") || !strings.Contains(out, "x_gauge -5\n") {
		t.Fatalf("disambiguated exposition wrong:\n%s", out)
	}
}

var promLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*"\})? (\+Inf|-Inf|NaN|-?[0-9].*))$`)

// checkPrometheus asserts every line of a text exposition is well-formed.
func checkPrometheus(t *testing.T, out string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}

func TestExpositionFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a\nwith newline").Add(3)
	r.Gauge("b", `back\slash`).Set(-2)
	h := r.Histogram("c_seconds", "latency", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(100)

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	checkPrometheus(t, prom.String())
	for _, want := range []string{
		"# TYPE a_total counter", "a_total 3",
		"# TYPE b gauge", "b -2",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="0.5"} 1`,
		`c_seconds_bucket{le="2"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 101.1", "c_seconds_count 3",
		`counts a\nwith newline`, `back\\slash`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, prom.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatalf("JSON exposition does not parse: %v\n%s", err, js.String())
	}
	if snap.Counters["a_total"] != 3 || snap.Gauges["b"] != -2 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
	hs := snap.Histograms["c_seconds"]
	if hs.Count != 3 || hs.Counts[len(hs.Counts)-1] != 3 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
}

func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10, 100})
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.TrackMax(int64(w*perWorker + i))
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	// Concurrent scrapes must be safe while writers run.
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker-1 {
		t.Fatalf("gauge max = %d, want %d", g.Value(), workers*perWorker-1)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// TestHotPathAllocationFree is the acceptance gate for the hot path: a
// counter increment, gauge store, and histogram observation must not
// allocate.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", LatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3); g.TrackMax(9) }); n != 0 {
		t.Fatalf("Gauge mutation allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v times per call", n)
	}
}

func TestServeMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("pift_tracker_taint_adds_total", "adds").Add(12)
	mux := NewServeMux(r)

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}
	rec := get("/metrics")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "pift_tracker_taint_adds_total 12") {
		t.Fatalf("/metrics = %d %q", rec.Code, rec.Body.String())
	}
	checkPrometheus(t, rec.Body.String())
	rec = get("/metrics.json")
	if rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("/metrics.json = %d, valid JSON = %v", rec.Code, json.Valid(rec.Body.Bytes()))
	}
	if rec := get("/debug/pprof/cmdline"); rec.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", rec.Code)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
}
