package stackvm

import (
	"repro/internal/arm"
	"repro/internal/frontend"
	"repro/internal/mem"
)

// This file adapts the stack VM to the front-end-agnostic surface of
// internal/frontend: *Program implements frontend.Program, and Front is
// the frontend.Frontend descriptor used by flags and the static-coverage
// experiments.

var _ frontend.Program = (*Program)(nil)

// Translate implements frontend.Program.
func (p *Program) Translate(asm *arm.Assembler, rt frontend.Runtime, mode frontend.Mode) (frontend.Image, error) {
	tr, err := TranslateMode(p, asm, rt, mode)
	if err != nil {
		return nil, err
	}
	return translatedImage{tr}, nil
}

// translatedImage adapts *Translated (whose EntryLabel is a field) to the
// frontend.Image interface.
type translatedImage struct{ tr *Translated }

func (im translatedImage) EntryLabel() string         { return im.tr.EntryLabel }
func (im translatedImage) Materialize(m frontend.Mem) { im.tr.Materialize(m) }

// Front is the stack-VM front end descriptor.
type Front struct{}

var _ frontend.Frontend = Front{}

// Name implements frontend.Frontend.
func (Front) Name() string { return "stackvm" }

// Templates implements frontend.Frontend: it translates a program
// exercising every opcode and reports each template's measured data
// load/store positions. The measurement is live — a template regression
// changes the result. stack.save/stack.restore are measured at depth
// K=3, where the spill distances (2K and 2K-1) sit right at the paper's
// NI=13 horizon for deeper groups.
func (Front) Templates() ([]frontend.TemplateInfo, error) {
	metas, err := translateAllOps()
	if err != nil {
		return nil, err
	}
	out := make([]frontend.TemplateInfo, 0, len(metas))
	for _, m := range metas {
		info := frontend.TemplateInfo{
			Op:         m.Op.String(),
			MovesData:  m.Op.MovesData(),
			HelperCall: m.HelperCall,
		}
		info.Distance, info.HasDistance = m.Distance()
		out = append(out, info)
	}
	return out, nil
}

// translateAllOps builds a program exercising every opcode and returns the
// translation metadata.
func translateAllOps() ([]InsnMeta, error) {
	b := NewProgram("svmtable1")

	callee := b.Func("callee", 1, 0, 2)
	callee.LocalGet(0)
	callee.RetVal()

	m := b.Func("main", 0, 2, 10)
	m.Nop()
	m.Const(7)
	m.Dup()
	m.Drop()
	m.LocalSet(0)
	m.ConstStr("t")
	m.LocalSet(1)
	m.LocalGet(0)
	m.Const(1)
	m.Add()
	m.Const(1)
	m.Sub()
	m.Const(1)
	m.Mul()
	m.Const(1)
	m.And()
	m.Const(1)
	m.Or()
	m.Const(1)
	m.Xor()
	m.Const(1)
	m.Shl()
	m.Const(1)
	m.Shr()
	m.Eqz()
	m.LocalSet(0)
	// Memory ops address an interned literal; the templates are only
	// translated here, never executed.
	m.ConstStr("cell")
	m.Load()
	m.Drop()
	m.ConstStr("cell")
	m.Load16()
	m.Drop()
	m.ConstStr("cell")
	m.Const(1)
	m.Store()
	m.ConstStr("cell")
	m.Const(1)
	m.Store16()
	// Spill group at the reference depth K=3.
	m.Const(1)
	m.Const(2)
	m.Const(3)
	m.Save(3)
	m.Restore(3)
	m.Drop()
	m.Drop()
	m.Drop()
	// Calls: app-level and extern, plus the result fetch.
	m.Const(5)
	m.Call("callee")
	m.Result()
	m.Drop()
	m.Const(5)
	m.CallExtern("measure", 1)
	// Branches: a conditional hop and an unconditional one.
	m.Const(0)
	m.BrIf("join")
	m.Label("join")
	m.Br("end")
	m.Label("end")
	m.Ret()
	b.Entry("main")

	prog, err := b.Build(map[string]bool{"measure": true})
	if err != nil {
		return nil, err
	}

	asm := arm.NewAssembler(frontend.CodeBase)
	rt := &measureRuntime{}
	asm.Label("measure$extern")
	asm.Emit(arm.BxLR())
	tr, err := Translate(prog, asm, rt)
	if err != nil {
		return nil, err
	}
	return tr.Meta, nil
}

// measureRuntime is the minimal Runtime needed to translate for
// measurement: no real heap, every extern resolves to a stub.
type measureRuntime struct {
	next mem.Addr
}

func (m *measureRuntime) InternString(string) mem.Addr {
	m.next += 0x40
	return frontend.HeapBase + m.next
}

func (m *measureRuntime) ExternEntry(string) (string, bool) {
	return "measure$extern", true
}
