package stackvm

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/frontend"
	"repro/internal/mem"
)

// mterp-style register conventions for the stack interpreter. rPC, rINST
// and rSELF match the Dalvik front end; the frame registers differ: rLOC
// points at the frame's local slots and rSTK is the operand-stack top
// (next free slot; the stack grows upward within the frame).
const (
	RPC   = arm.R4
	RSTK  = arm.R5
	RSELF = frontend.RSelf
	RINST = arm.R7
	RLOC  = arm.R8
)

// Frame layout, from rLOC upward: NumLocals() local words, Stack operand
// words, then the call save area.
const (
	saveCallerLOC = 0
	saveCallerSTK = 4
	saveCallerPC  = 8
	saveReturnPC  = 12
	saveAreaBytes = 16
)

func frameBytes(f *Func) int32 {
	return int32(4*(f.NumLocals()+f.Stack)) + saveAreaBytes
}

// saveOff is the byte offset of the save area from rLOC.
func saveOff(f *Func) int32 { return int32(4 * (f.NumLocals() + f.Stack)) }

// spillRegs is the register pool stack.save/stack.restore cycles a group
// through (in depth order: group slot j ↔ spillRegs[j]).
var spillRegs = [MaxSpill]arm.Reg{
	arm.R0, arm.R1, arm.R2, arm.R3, arm.R9, arm.R10, arm.R11, arm.R12,
}

// Mode aliases the shared execution tiers for readable call sites.
type Mode = frontend.Mode

const (
	ModeInterp = frontend.ModeInterp
	ModeJIT    = frontend.ModeJIT
	ModeAOT    = frontend.ModeAOT
)

// Runtime is the translation-time runtime interface (string interning,
// extern routine discovery).
type Runtime = frontend.Runtime

// InsnMeta records, for one translated stack-bytecode instance, where its
// native template landed and which native instructions are the template's
// measured data load and data store — same contract as the Dalvik
// translator's metadata, feeding Table 1 and the template tests.
type InsnMeta struct {
	Func        string
	Index       int
	Op          Op
	NativeStart int // image instruction index of the template's first instruction
	NativeEnd   int // one past the template's last instruction
	MeasureLoad int // image index of the load of actual data, -1 if none
	DataStore   int // image index of the data store, -1 if none
	HelperCall  bool
}

// Distance returns the template's load→store distance in instructions, or
// false when the template has no such pair (or it spans a helper call).
func (m InsnMeta) Distance() (int, bool) {
	if m.MeasureLoad < 0 || m.DataStore < 0 || m.HelperCall {
		return 0, false
	}
	return m.DataStore - m.MeasureLoad, true
}

// Translated is the output of Translate: entry-point labels, the bytecode
// units to materialize in data memory, and per-instruction metadata.
type Translated struct {
	Prog       *Program
	EntryLabel string
	ExitLabel  string
	FuncLabels map[string]string
	Words      []uint16 // bytecode units, at frontend.BytecodeBase
	Meta       []InsnMeta

	unitBase map[string]int
}

// FuncUnitAddr returns the data-memory address of a function's first
// bytecode unit.
func (tr *Translated) FuncUnitAddr(name string) mem.Addr {
	return frontend.BytecodeBase + mem.Addr(2*tr.unitBase[name])
}

// Materialize writes the bytecode stream into memory; the harness calls
// this before starting the process (loader writes, not program stores).
func (tr *Translated) Materialize(m frontend.Mem) {
	for i, w := range tr.Words {
		m.Store16(frontend.BytecodeBase+mem.Addr(2*i), w)
	}
}

type translator struct {
	prog *Program
	asm  *arm.Assembler
	rt   Runtime
	out  *Translated
	mode Mode

	fn   *Func
	meta *InsnMeta
	uniq int
}

// Translate lowers every function of the program into native interpreter
// templates in the shared assembler. The caller finishes the assembler.
func Translate(prog *Program, asm *arm.Assembler, rt Runtime) (*Translated, error) {
	return TranslateMode(prog, asm, rt, ModeInterp)
}

// TranslateMode lowers with an explicit execution tier.
func TranslateMode(prog *Program, asm *arm.Assembler, rt Runtime, mode Mode) (*Translated, error) {
	t := &translator{
		prog: prog,
		asm:  asm,
		rt:   rt,
		mode: mode,
		out: &Translated{
			Prog:       prog,
			EntryLabel: "svmboot",
			ExitLabel:  "svmexit",
			FuncLabels: make(map[string]string),
			unitBase:   make(map[string]int),
		},
	}

	units := 0
	for _, name := range prog.FuncNames {
		t.out.unitBase[name] = units
		units += len(prog.Funcs[name].Insns)
	}
	t.out.Words = make([]uint16, units)

	if err := t.emitBootstrap(); err != nil {
		return nil, err
	}
	for _, name := range prog.FuncNames {
		if err := t.emitFunc(prog.Funcs[name]); err != nil {
			return nil, err
		}
	}
	return t.out, nil
}

func funcLabel(name string) string { return "svm$" + name }

func insnLabel(fn string, idx int) string {
	return fmt.Sprintf("svm$%s$%d", fn, idx)
}

func (t *translator) newLabel(hint string) string {
	t.uniq++
	return fmt.Sprintf("S$%s$%d", hint, t.uniq)
}

func addrImm(a mem.Addr) int32 { return int32(a) }

// push emits "str r, [rSTK], #4" — the operand-stack push.
func push(r arm.Reg) arm.Instr {
	return arm.Instr{Op: arm.OpSTR, Rd: r, Rn: RSTK, Imm: 4, UseImm: true, Idx: arm.IdxPost}
}

// pop emits "ldr r, [rSTK, #-4]!" — the operand-stack pop.
func pop(r arm.Reg) arm.Instr {
	return arm.Instr{Op: arm.OpLDR, Rd: r, Rn: RSTK, Imm: -4, UseImm: true, Idx: arm.IdxPre}
}

func (t *translator) emitBootstrap() error {
	entry := t.prog.Funcs[t.prog.Entry]
	if entry == nil {
		return fmt.Errorf("stackvm: entry function %q missing", t.prog.Entry)
	}
	a := t.asm
	a.Label(t.out.EntryLabel)
	loc := addrImm(frontend.FrameTop - mem.Addr(frameBytes(entry)))
	save := saveOff(entry)
	a.Emit(
		arm.MovImm(arm.SP, addrImm(frontend.StackTop)),
		arm.MovImm(RSELF, int32(frontend.SelfBase)),
		arm.MovImm(arm.R10, loc),
		arm.MovImm(arm.R0, 0),
		arm.Str(arm.R0, arm.R10, save+saveCallerLOC),
		arm.Str(arm.R0, arm.R10, save+saveCallerSTK),
		arm.Str(arm.R0, arm.R10, save+saveCallerPC),
	)
	a.MovLabel(arm.R2, t.out.ExitLabel)
	a.Emit(
		arm.Str(arm.R2, arm.R10, save+saveReturnPC),
		arm.Mov(RLOC, arm.R10),
		arm.AddImm(RSTK, RLOC, int32(4*entry.NumLocals())),
	)
	if t.mode != ModeAOT {
		a.Emit(
			arm.MovImm(RPC, int32(t.out.FuncUnitAddr(t.prog.Entry))),
			arm.Ldrh(RINST, RPC, 0),
			arm.AndImm(arm.R12, RINST, 255),
		)
	}
	a.B(arm.AL, funcLabel(t.prog.Entry))
	a.Label(t.out.ExitLabel)
	a.Emit(arm.Svc(0))
	return nil
}

func (t *translator) emitFunc(f *Func) error {
	t.fn = f
	t.out.FuncLabels[f.Name] = funcLabel(f.Name)
	t.asm.Label(funcLabel(f.Name))
	for i := range f.Insns {
		t.asm.Label(insnLabel(f.Name, i))
		t.out.Words[t.out.unitBase[f.Name]+i] = encodeUnit(&f.Insns[i])
		t.out.Meta = append(t.out.Meta, InsnMeta{
			Func:        f.Name,
			Index:       i,
			Op:          f.Insns[i].Op,
			NativeStart: t.asm.Len(),
			MeasureLoad: -1,
			DataStore:   -1,
		})
		t.meta = &t.out.Meta[len(t.out.Meta)-1]
		if err := t.emitInsn(f, i, &f.Insns[i]); err != nil {
			return fmt.Errorf("stackvm: %s insn %d (%v): %w", f.Name, i, f.Insns[i].Op, err)
		}
		t.meta.NativeEnd = t.asm.Len()
	}
	return nil
}

// encodeUnit packs a bytecode unit as the interpreter fetch sees it:
// opcode in the low byte, the A operand in the high byte.
func encodeUnit(in *Insn) uint16 {
	return uint16(in.Op) | uint16(in.A&0xff)<<8
}

func (t *translator) markMeasure() { t.meta.MeasureLoad = t.asm.Len() }
func (t *translator) markStore()   { t.meta.DataStore = t.asm.Len() }

// fetch emits FETCH_ADVANCE_INST: "ldrh rINST, [rPC, #2]!".
func (t *translator) fetch() {
	if t.mode == ModeAOT {
		return
	}
	t.asm.Emit(arm.LdrhPre(RINST, RPC, 2))
}

// and12 emits the opcode-extraction "and r12, rINST, #255".
func (t *translator) and12() {
	if t.mode != ModeInterp {
		return
	}
	t.asm.Emit(arm.AndImm(arm.R12, RINST, 255))
}

// goNext branches to the next bytecode's template (interp only; the
// optimizing tiers fall through).
func (t *translator) goNext(idx int) {
	if t.mode != ModeInterp {
		return
	}
	t.asm.B(arm.AL, insnLabel(t.fn.Name, idx+1))
}

func (t *translator) dispatch(idx int) {
	t.fetch()
	t.and12()
	t.goNext(idx)
}

// dispatchBranch always emits the jump to the next template (used ahead of
// branch stubs where fall-through is impossible).
func (t *translator) dispatchBranch(idx int) {
	t.fetch()
	t.and12()
	t.asm.B(arm.AL, insnLabel(t.fn.Name, idx+1))
}

// decodeA emits the A-operand extraction "ubfx r9, rINST, #8, #8".
func (t *translator) decodeA() {
	if t.mode == ModeAOT {
		return
	}
	t.asm.Emit(arm.Ubfx(arm.R9, RINST, 8, 8))
}

func binopInstr(op Op) (arm.Instr, bool) {
	switch op {
	case OpAdd:
		return arm.Add(arm.R0, arm.R0, arm.R1), true
	case OpSub:
		return arm.Sub(arm.R0, arm.R0, arm.R1), true
	case OpMul:
		return arm.Mul(arm.R0, arm.R0, arm.R1), true
	case OpAnd:
		return arm.And(arm.R0, arm.R0, arm.R1), true
	case OpOr:
		return arm.Orr(arm.R0, arm.R0, arm.R1), true
	case OpXor:
		return arm.Eor(arm.R0, arm.R0, arm.R1), true
	case OpShl:
		return arm.Instr{Op: arm.OpLSL, Rd: arm.R0, Rn: arm.R0, Rm: arm.R1}, true
	case OpShr:
		return arm.Instr{Op: arm.OpASR, Rd: arm.R0, Rn: arm.R0, Rm: arm.R1}, true
	}
	return arm.Instr{}, false
}

func (t *translator) emitInsn(f *Func, idx int, in *Insn) error {
	a := t.asm
	switch in.Op {
	case OpNop:
		t.dispatch(idx)

	case OpConst:
		a.Emit(arm.MovImm(arm.R0, in.Lit))
		t.fetch()
		t.markStore()
		a.Emit(push(arm.R0))
		t.and12()
		t.goNext(idx)

	case OpConstStr:
		addr := t.rt.InternString(in.Str)
		a.Emit(arm.MovImm(arm.R0, addrImm(addr)))
		t.fetch()
		t.markStore()
		a.Emit(push(arm.R0))
		t.and12()
		t.goNext(idx)

	case OpDrop:
		a.Emit(arm.SubImm(RSTK, RSTK, 4))
		t.dispatch(idx)

	case OpDup:
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RSTK, -4))
		t.fetch()
		t.and12()
		t.markStore()
		a.Emit(push(arm.R0))
		t.goNext(idx)

	case OpLocalGet:
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RLOC, int32(4*in.A)))
		t.fetch()
		t.and12()
		t.markStore()
		a.Emit(push(arm.R0))
		t.goNext(idx)

	case OpLocalSet:
		t.decodeA()
		t.markMeasure()
		a.Emit(pop(arm.R0))
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RLOC, int32(4*in.A)))
		t.and12()
		t.goNext(idx)

	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr:
		alu, ok := binopInstr(in.Op)
		if !ok {
			return fmt.Errorf("no ALU template for %v", in.Op)
		}
		t.markMeasure()
		a.Emit(pop(arm.R1), pop(arm.R0))
		t.fetch()
		a.Emit(alu)
		t.and12()
		t.markStore()
		a.Emit(push(arm.R0))
		t.goNext(idx)

	case OpEqz:
		t.markMeasure()
		a.Emit(pop(arm.R0), arm.CmpImm(arm.R0, 0), arm.MovImm(arm.R0, 0))
		eq := arm.MovImm(arm.R0, 1)
		eq.Cond = arm.EQ
		a.Emit(eq)
		t.fetch()
		t.and12()
		t.markStore()
		a.Emit(push(arm.R0))
		t.goNext(idx)

	case OpLoad:
		a.Emit(pop(arm.R0))
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R1, arm.R0, 0))
		t.fetch()
		t.markStore()
		a.Emit(push(arm.R1))
		t.and12()
		t.goNext(idx)

	case OpLoad16:
		a.Emit(pop(arm.R0))
		t.markMeasure()
		a.Emit(arm.Ldrh(arm.R1, arm.R0, 0))
		t.fetch()
		t.markStore()
		a.Emit(push(arm.R1))
		t.and12()
		t.goNext(idx)

	case OpStore:
		t.markMeasure()
		a.Emit(pop(arm.R1), pop(arm.R0))
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R1, arm.R0, 0))
		t.and12()
		t.goNext(idx)

	case OpStore16:
		t.markMeasure()
		a.Emit(pop(arm.R1), pop(arm.R0))
		t.fetch()
		t.markStore()
		a.Emit(arm.Strh(arm.R1, arm.R0, 0))
		t.and12()
		t.goNext(idx)

	case OpBr:
		t.emitTaken(f, idx, f.Labels[in.Target])

	case OpBrIf:
		taken := t.newLabel("brif")
		t.markMeasure()
		a.Emit(pop(arm.R0), arm.CmpImm(arm.R0, 0))
		a.B(arm.NE, taken)
		t.dispatchBranch(idx)
		a.Label(taken)
		t.emitTaken(f, idx, f.Labels[in.Target])

	case OpCall:
		t.emitCall(f, idx, in)

	case OpCallExtern:
		label, ok := t.rt.ExternEntry(in.Sym)
		if !ok {
			return fmt.Errorf("extern %q not provided by runtime", in.Sym)
		}
		for k := in.A - 1; k >= 0; k-- {
			a.Emit(pop(arm.Reg(k)))
		}
		a.BL(label)
		t.meta.HelperCall = true
		t.dispatch(idx)

	case OpResult:
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RSELF, frontend.RetvalOffset))
		t.fetch()
		t.markStore()
		a.Emit(push(arm.R0))
		t.and12()
		t.goNext(idx)

	case OpRet:
		t.emitUnwind(f)

	case OpRetVal:
		t.markMeasure()
		a.Emit(pop(arm.R0))
		t.markStore()
		a.Emit(arm.Str(arm.R0, RSELF, frontend.RetvalOffset))
		t.emitUnwind(f)

	case OpSave:
		k := in.A
		t.decodeA()
		for j := 0; j < k; j++ {
			if j == 0 {
				t.markMeasure()
			}
			a.Emit(arm.Ldr(spillRegs[j], RSTK, int32(-4*(k-j))))
		}
		a.Emit(arm.SubImm(RSTK, RSTK, int32(4*k)))
		for j := k - 1; j >= 0; j-- {
			if j == 0 {
				t.markStore()
			}
			a.Emit(arm.Instr{Op: arm.OpSTR, Rd: spillRegs[j], Rn: arm.SP,
				Imm: -4, UseImm: true, Idx: arm.IdxPre})
		}
		t.dispatch(idx)

	case OpRestore:
		k := in.A
		t.decodeA()
		for j := 0; j < k; j++ {
			if j == 0 {
				t.markMeasure()
			}
			a.Emit(arm.Instr{Op: arm.OpLDR, Rd: spillRegs[j], Rn: arm.SP,
				Imm: 4, UseImm: true, Idx: arm.IdxPost})
		}
		for j := k - 1; j >= 0; j-- {
			if j == 0 {
				t.markStore()
			}
			a.Emit(arm.Str(spillRegs[j], RSTK, int32(4*j)))
		}
		a.Emit(arm.AddImm(RSTK, RSTK, int32(4*k)))
		t.dispatch(idx)

	default:
		return fmt.Errorf("no template for %v", in.Op)
	}
	return nil
}

// emitTaken transfers control to bytecode index tIdx: advance rPC by the
// unit delta, refetch, and jump to the target's template.
func (t *translator) emitTaken(f *Func, idx, tIdx int) {
	if t.mode != ModeAOT {
		delta := int32(2*(tIdx-idx) - 2)
		if delta != 0 {
			t.asm.Emit(arm.AddImm(RPC, RPC, delta))
		}
	}
	t.fetch()
	t.and12()
	t.asm.B(arm.AL, insnLabel(f.Name, tIdx))
}

// emitCall enters an app-level function: carve the callee frame below the
// caller's, pop the arguments into the callee's parameter locals, link the
// save area, and branch to the callee's first template.
func (t *translator) emitCall(f *Func, idx int, in *Insn) {
	a := t.asm
	callee := t.prog.Funcs[in.Sym]
	a.Emit(arm.SubImm(arm.R10, RLOC, frameBytes(callee)))
	for k := callee.Params - 1; k >= 0; k-- {
		a.Emit(pop(arm.R2), arm.Str(arm.R2, arm.R10, int32(4*k)))
	}
	save := saveOff(callee)
	ret := t.newLabel("ret")
	a.Emit(
		arm.Str(RLOC, arm.R10, save+saveCallerLOC),
		arm.Str(RSTK, arm.R10, save+saveCallerSTK),
	)
	if t.mode != ModeAOT {
		a.Emit(arm.Str(RPC, arm.R10, save+saveCallerPC))
	}
	a.MovLabel(arm.R2, ret)
	a.Emit(
		arm.Str(arm.R2, arm.R10, save+saveReturnPC),
		arm.Mov(RLOC, arm.R10),
		arm.AddImm(RSTK, RLOC, int32(4*callee.NumLocals())),
	)
	if t.mode != ModeAOT {
		a.Emit(
			arm.MovImm(RPC, int32(t.out.FuncUnitAddr(callee.Name))),
			arm.Ldrh(RINST, RPC, 0),
			arm.AndImm(arm.R12, RINST, 255),
		)
	}
	a.B(arm.AL, funcLabel(callee.Name))
	a.Label(ret)
	t.dispatch(idx)
}

// emitUnwind returns to the caller: reload its frame registers and resume
// at the saved return address.
func (t *translator) emitUnwind(f *Func) {
	a := t.asm
	a.Emit(
		arm.AddImm(arm.R9, RLOC, saveOff(f)),
		arm.Ldr(arm.R1, arm.R9, saveReturnPC),
	)
	if t.mode != ModeAOT {
		a.Emit(arm.Ldr(RPC, arm.R9, saveCallerPC))
	}
	a.Emit(
		arm.Ldr(RSTK, arm.R9, saveCallerSTK),
		arm.Ldr(RLOC, arm.R9, saveCallerLOC),
		arm.Instr{Op: arm.OpBX, Rm: arm.R1},
	)
}
