// Package stackvm is the platform's second guest front end: a compact
// wasm-style stack bytecode (in the spirit of TaintAssembly's instrumented
// WebAssembly VM) with translation templates that lower every op to the
// same ARM event stream the Dalvik front end produces — so the trace
// codec, the sharded pipeline, the trackers, and the DIFT oracle run
// unchanged on stack-machine traffic.
//
// The interesting difference from the register VM is the operand stack:
// values live in frame memory and move through push/pop load-store pairs,
// and the stack.save/stack.restore ops batch-spill the top K operand
// slots to the native stack (deep operand stacks, register-allocated
// shuffles). A value K deep in a spill group has its carrying store 2K
// native instructions after its load, as the window's K-th store — the
// load→store window assumption (NI=13/NT=3) strains exactly there.
package stackvm

import "fmt"

// Op is a stack-bytecode opcode.
type Op uint8

const (
	OpNop Op = iota
	// OpConst pushes the Lit immediate.
	OpConst
	// OpConstStr pushes the address of the interned Str literal.
	OpConstStr
	// OpDrop discards the top of the operand stack (pointer adjust only).
	OpDrop
	// OpDup pushes a copy of the top operand.
	OpDup
	// OpLocalGet pushes local A.
	OpLocalGet
	// OpLocalSet pops into local A.
	OpLocalSet
	// Binary ops pop b then a, push a∘b.
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// OpEqz pops a, pushes a==0 ? 1 : 0.
	OpEqz
	// OpLoad pops an address, pushes the 32-bit word there.
	OpLoad
	// OpLoad16 pops an address, pushes the 16-bit halfword there.
	OpLoad16
	// OpStore pops value then address, stores the 32-bit word.
	OpStore
	// OpStore16 pops value then address, stores the low halfword.
	OpStore16
	// OpBr branches unconditionally to Target.
	OpBr
	// OpBrIf pops a condition and branches to Target when nonzero.
	OpBrIf
	// OpCall pops the callee's A parameters into its frame and enters it.
	OpCall
	// OpCallExtern pops A arguments into r0..r(A-1) and calls the extern
	// routine Sym (intrinsics, framework sources and sinks).
	OpCallExtern
	// OpResult pushes the thread's return-value slot.
	OpResult
	// OpRet returns without a value.
	OpRet
	// OpRetVal pops the return value into the retval slot and returns.
	OpRetVal
	// OpSave batch-spills the top A operand slots to the native stack
	// (deepest slot first-loaded, last-stored: distance 2A, A-th store).
	OpSave
	// OpRestore reloads A values spilled by OpSave back onto the operand
	// stack (deepest slot first-loaded, last-stored: distance 2A-1).
	OpRestore

	opCount // sentinel
)

// MaxSpill bounds OpSave/OpRestore depth: the template holds the group in
// r0-r3 and r9-r12.
const MaxSpill = 8

type opInfo struct {
	name      string
	movesData bool
}

var opTable = [opCount]opInfo{
	OpNop:        {"nop", false},
	OpConst:      {"i32.const", false},
	OpConstStr:   {"str.const", false},
	OpDrop:       {"drop", false},
	OpDup:        {"dup", true},
	OpLocalGet:   {"local.get", true},
	OpLocalSet:   {"local.set", true},
	OpAdd:        {"i32.add", true},
	OpSub:        {"i32.sub", true},
	OpMul:        {"i32.mul", true},
	OpAnd:        {"i32.and", true},
	OpOr:         {"i32.or", true},
	OpXor:        {"i32.xor", true},
	OpShl:        {"i32.shl", true},
	OpShr:        {"i32.shr", true},
	OpEqz:        {"i32.eqz", true},
	OpLoad:       {"i32.load", true},
	OpLoad16:     {"i32.load16", true},
	OpStore:      {"i32.store", true},
	OpStore16:    {"i32.store16", true},
	OpBr:         {"br", false},
	OpBrIf:       {"br_if", false},
	OpCall:       {"call", true},
	OpCallExtern: {"call.extern", true},
	OpResult:     {"result", true},
	OpRet:        {"return", false},
	OpRetVal:     {"return.value", true},
	OpSave:       {"stack.save", true},
	OpRestore:    {"stack.restore", true},
}

func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op?0x%02x", uint8(op))
}

// MovesData reports whether the op copies program data through memory
// (the Table 1 population for this front end).
func (op Op) MovesData() bool {
	if int(op) < len(opTable) {
		return opTable[op].movesData
	}
	return false
}
