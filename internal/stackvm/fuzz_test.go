package stackvm

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the module decoder with arbitrary bytes. Invalid
// input must be rejected without panicking or over-allocating; any input
// that decodes must re-encode to the canonical form, and that form must
// round-trip as a fixed point.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("PIFTSVM1"))
	f.Add(Encode(richProgram(f)))
	min := NewProgram("min")
	min.Func("main", 0, 0, 1).Const(1).RetVal()
	min.Entry("main")
	if p, err := min.Build(nil); err == nil {
		f.Add(Encode(p))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		wire := Encode(p)
		p2, err := Decode(wire)
		if err != nil {
			t.Fatalf("canonical form does not re-decode: %v", err)
		}
		if !bytes.Equal(Encode(p2), wire) {
			t.Fatal("Encode∘Decode is not a fixed point on canonical input")
		}
	})
}
