package stackvm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arm"
	"repro/internal/frontend"
	"repro/internal/mem"
)

// richProgram builds a valid program exercising every opcode and every
// operand payload form the wire format carries (i32 literal, string,
// local index, spill depth, call symbol, extern symbol+arity, branch
// target) — the shared fixture for the template, round-trip, and fuzz
// seeds.
func richProgram(t testing.TB) *Program {
	t.Helper()
	b := NewProgram("rich")

	callee := b.Func("callee", 1, 0, 2)
	callee.LocalGet(0)
	callee.RetVal()

	m := b.Func("main", 0, 2, 10)
	m.Nop()
	m.Const(1)
	m.Const(2)
	m.Add()
	m.LocalSet(0)
	m.ConstStr("cell")
	m.Const(3)
	m.Store()
	m.ConstStr("cell")
	m.Load()
	m.LocalSet(1)
	m.ConstStr("cell")
	m.Load16()
	m.Drop()
	m.Const(7)
	m.Dup()
	m.Store16()
	m.Const(10)
	m.Const(3)
	m.Sub()
	m.Eqz()
	m.Drop()
	m.Const(1)
	m.Const(2)
	m.Const(3)
	m.Save(3)
	m.Restore(3)
	m.Drop()
	m.Drop()
	m.Drop()
	m.Const(0)
	m.BrIf("skip")
	m.Nop()
	m.Label("skip")
	m.Const(5)
	m.Call("callee")
	m.Result()
	m.CallExtern("measure", 1)
	m.Br("end")
	m.Label("end")
	m.Const(9)
	m.RetVal()
	b.Entry("main")

	prog, err := b.Build(map[string]bool{"measure": true})
	if err != nil {
		t.Fatalf("rich program: %v", err)
	}
	return prog
}

// translateForTest lowers a program with the measurement stub runtime.
func translateForTest(t testing.TB, prog *Program, mode Mode) *Translated {
	t.Helper()
	asm := arm.NewAssembler(frontend.CodeBase)
	asm.Label("measure$extern")
	asm.Emit(arm.BxLR())
	tr, err := TranslateMode(prog, asm, &measureRuntime{}, mode)
	if err != nil {
		t.Fatalf("translate %s: %v", prog.Name, err)
	}
	return tr
}

// TestTemplateDistances pins every template's measured load→store
// distance — the stack-VM column of the Table 1 discipline. A template
// edit that moves the carrying store relative to the measured load
// changes the window math and must show up here.
func TestTemplateDistances(t *testing.T) {
	metas, err := translateAllOps()
	if err != nil {
		t.Fatal(err)
	}
	want := map[Op]int{
		OpDup:      3,
		OpLocalGet: 3,
		OpLocalSet: 2,
		OpAdd:      5, OpSub: 5, OpMul: 5, OpAnd: 5,
		OpOr: 5, OpXor: 5, OpShl: 5, OpShr: 5,
		OpEqz:    6,
		OpLoad:   2,
		OpLoad16: 2,
		OpStore:  3, OpStore16: 3,
		OpResult:  2,
		OpRetVal:  1,
		OpSave:    6, // K=3: 2K as the K-th store
		OpRestore: 5, // K=3: 2K-1
	}
	seen := map[Op]bool{}
	for _, m := range metas {
		seen[m.Op] = true
		d, has := m.Distance()
		if w, ok := want[m.Op]; ok {
			if !has {
				t.Errorf("%s: no distance, want %d", m.Op, w)
			} else if d != w {
				t.Errorf("%s: distance %d, want %d", m.Op, d, w)
			}
			continue
		}
		switch m.Op {
		case OpConst, OpConstStr:
			// Pure materialization: a data store with no measured load.
			if has || m.MeasureLoad >= 0 || m.DataStore < 0 {
				t.Errorf("%s: want store-only template (load=%d store=%d has=%v)",
					m.Op, m.MeasureLoad, m.DataStore, has)
			}
		case OpCallExtern:
			if !m.HelperCall || has {
				t.Errorf("%s: want opaque helper call (helper=%v has=%v)",
					m.Op, m.HelperCall, has)
			}
		case OpNop, OpDrop, OpBr, OpBrIf, OpCall, OpRet:
			if has {
				t.Errorf("%s: unexpected distance %d", m.Op, d)
			}
		default:
			t.Errorf("unclassified op %s in all-ops metadata", m.Op)
		}
	}
	for op := range want {
		if !seen[op] {
			t.Errorf("%s: not exercised by the all-ops program", op)
		}
	}
}

// TestSpillDistances pins the spill-group geometry at every depth: the
// deepest value of a stack.save travels load→store distance 2K as the
// window's K-th store, and stack.restore returns it at 2K-1. K=6 breaks
// NT=3 and K=8 breaks both NT and NI=13 — the window misses the stack-VM
// experiment quantifies.
func TestSpillDistances(t *testing.T) {
	for k := 1; k <= MaxSpill; k++ {
		b := NewProgram("spill")
		f := b.Func("main", 0, 0, k)
		for j := 0; j < k; j++ {
			f.Const(int32(j))
		}
		f.Save(k)
		f.Restore(k)
		for j := 0; j < k; j++ {
			f.Drop()
		}
		f.Ret()
		b.Entry("main")
		prog, err := b.Build(nil)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		tr := translateForTest(t, prog, ModeInterp)
		var gotSave, gotRestore int
		for _, m := range tr.Meta {
			d, has := m.Distance()
			switch m.Op {
			case OpSave:
				if !has {
					t.Fatalf("K=%d: save has no distance", k)
				}
				gotSave = d
			case OpRestore:
				if !has {
					t.Fatalf("K=%d: restore has no distance", k)
				}
				gotRestore = d
			}
		}
		if gotSave != 2*k {
			t.Errorf("K=%d: save distance %d, want %d", k, gotSave, 2*k)
		}
		if gotRestore != 2*k-1 {
			t.Errorf("K=%d: restore distance %d, want %d", k, gotRestore, 2*k-1)
		}
	}
}

// TestBuildErrors exercises the validator: every malformed program is
// rejected at Build time with a diagnostic naming the defect.
func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name    string
		wantSub string
		build   func() *Builder
	}{
		{"underflow", "operand stack underflow", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 2).Drop().Ret()
			b.Entry("main")
			return b
		}},
		{"overflow", "operand stack overflow", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Const(1).Const(2).Drop().Drop().Ret()
			b.Entry("main")
			return b
		}},
		{"merge depth mismatch", "disagrees with branch-in depth", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 3).
				Const(0).BrIf("join").Const(1).Label("join").Ret()
			b.Entry("main")
			return b
		}},
		{"spill residue at return", "still spilled by stack.save", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Const(1).Save(1).Ret()
			b.Entry("main")
			return b
		}},
		{"undefined label", "undefined label", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Br("nope")
			b.Entry("main")
			return b
		}},
		{"unknown extern", "unknown extern", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Const(1).CallExtern("nope", 1).Ret()
			b.Entry("main")
			return b
		}},
		{"undefined callee", "undefined function", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Call("nope").Ret()
			b.Entry("main")
			return b
		}},
		{"local out of range", "out of range", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 1, 1).LocalGet(3).Drop().Ret()
			b.Entry("main")
			return b
		}},
		{"unreachable code", "unreachable instruction", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Ret().Nop()
			b.Entry("main")
			return b
		}},
		{"save depth over cap", "out of range [1,8]", func() *Builder {
			b := NewProgram("p")
			f := b.Func("main", 0, 0, MaxSpill+1)
			for j := 0; j <= MaxSpill; j++ {
				f.Const(int32(j))
			}
			f.Save(MaxSpill + 1).Ret()
			b.Entry("main")
			return b
		}},
		{"restore more than spilled", "1 spilled", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 2).Const(1).Save(1).Restore(2).Drop().Ret()
			b.Entry("main")
			return b
		}},
		{"entry takes params", "want 0", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 1, 0, 1).LocalGet(0).RetVal()
			b.Entry("main")
			return b
		}},
		{"no entry", "no entry function", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Ret()
			return b
		}},
		{"entry undefined", "not defined", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Ret()
			b.Entry("ghost")
			return b
		}},
		{"negative frame", "negative frame shape", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, -1, 1).Ret()
			b.Entry("main")
			return b
		}},
		{"empty body", "empty body", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1)
			b.Entry("main")
			return b
		}},
		{"backward branch depth mismatch", "backward target", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 3).
				Label("top").Const(1).Br("top")
			b.Entry("main")
			return b
		}},
		{"fall off the end", "falls off the end", func() *Builder {
			b := NewProgram("p")
			b.Func("main", 0, 0, 1).Nop()
			b.Entry("main")
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build().Build(map[string]bool{"measure": true})
			if err == nil {
				t.Fatal("Build accepted a malformed program")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestEncodeDecodeRoundTrip: Encode∘Decode is a fixed point on the wire
// (canonical form), and a decoded module translates like the original.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := richProgram(t)
	wire := Encode(prog)
	dec, err := Decode(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	wire2 := Encode(dec)
	if !bytes.Equal(wire, wire2) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(wire), len(wire2))
	}
	if dec.Entry != prog.Entry || len(dec.FuncNames) != len(prog.FuncNames) {
		t.Fatalf("decoded shape: entry=%q funcs=%d", dec.Entry, len(dec.FuncNames))
	}
	orig := translateForTest(t, prog, ModeInterp)
	got := translateForTest(t, dec, ModeInterp)
	if len(got.Meta) != len(orig.Meta) || len(got.Words) != len(orig.Words) {
		t.Fatalf("decoded module translates differently: %d/%d meta, %d/%d words",
			len(got.Meta), len(orig.Meta), len(got.Words), len(orig.Words))
	}
}

// TestDecodeRejects: corrupt modules fail loudly, never alias to a valid
// program.
func TestDecodeRejects(t *testing.T) {
	wire := Encode(richProgram(t))
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("PIFTXXX1"), wire[8:]...),
		"truncated": wire[:len(wire)-3],
		"trailing":  append(append([]byte(nil), wire...), 0),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestTranslateModes: all three tiers lower the same program; the AOT
// shape drops the fetch/dispatch skeleton so it must be strictly
// smaller, and every mode carries one metadata record per instruction.
func TestTranslateModes(t *testing.T) {
	prog := richProgram(t)
	insns := prog.Instructions()
	sizes := map[Mode]int{}
	for _, mode := range []Mode{ModeInterp, ModeJIT, ModeAOT} {
		tr := translateForTest(t, prog, mode)
		if len(tr.Meta) != insns {
			t.Errorf("%v: %d metadata records for %d instructions", mode, len(tr.Meta), insns)
		}
		if len(tr.Words) == 0 {
			t.Errorf("%v: no bytecode units", mode)
		}
		if _, ok := tr.FuncLabels["callee"]; !ok {
			t.Errorf("%v: missing callee label", mode)
		}
		total := 0
		for _, m := range tr.Meta {
			total += m.NativeEnd - m.NativeStart
		}
		sizes[mode] = total
	}
	if sizes[ModeAOT] >= sizes[ModeInterp] {
		t.Errorf("AOT templates (%d instrs) not smaller than interpreter (%d)",
			sizes[ModeAOT], sizes[ModeInterp])
	}
}

// TestFrontendDescriptor exercises the frontend.Frontend/Program/Image
// surface: the live template measurements and the interface adapters.
func TestFrontendDescriptor(t *testing.T) {
	if got := (Front{}).Name(); got != "stackvm" {
		t.Fatalf("front end name %q, want stackvm", got)
	}
	infos, err := Front{}.Templates()
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]frontend.TemplateInfo{}
	for _, info := range infos {
		byOp[info.Op] = info
	}
	if lg, ok := byOp["local.get"]; !ok || !lg.HasDistance || lg.Distance != 3 || !lg.MovesData {
		t.Errorf("local.get template: %+v, want data-moving distance 3", byOp["local.get"])
	}
	if ce, ok := byOp["call.extern"]; !ok || !ce.HelperCall || ce.HasDistance {
		t.Errorf("call.extern template: %+v, want opaque helper call", byOp["call.extern"])
	}
	if c, ok := byOp["i32.const"]; !ok || c.MovesData || c.HasDistance {
		t.Errorf("i32.const template: %+v, want non-data-moving", byOp["i32.const"])
	}

	var prog frontend.Program = richProgram(t)
	if prog.ProgramName() != "rich" {
		t.Errorf("ProgramName %q", prog.ProgramName())
	}
	if prog.Instructions() == 0 {
		t.Error("Instructions() = 0")
	}
	counts := prog.OpCounts()
	if counts["i32.const"] == 0 || counts["stack.save"] != 1 {
		t.Errorf("OpCounts: %v", counts)
	}
	dump := prog.Dump()
	for _, want := range []string{"stack.save", "call.extern", "skip:", "local.get"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump lacks %q:\n%s", want, dump)
		}
	}
	if !OpSave.MovesData() || OpBr.MovesData() {
		t.Error("MovesData misclassifies stack.save or br")
	}
	if !strings.Contains(Op(0xee).String(), "op?") {
		t.Errorf("invalid opcode renders as %q", Op(0xee).String())
	}

	asm := arm.NewAssembler(frontend.CodeBase)
	asm.Label("measure$extern")
	asm.Emit(arm.BxLR())
	img, err := frontend.Translate(prog, asm, &measureRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if img.EntryLabel() == "" {
		t.Error("empty entry label")
	}
	m := mem.NewMemory()
	img.Materialize(m)
	if m.Load16(frontend.BytecodeBase) == 0 {
		t.Error("Materialize wrote no bytecode at BytecodeBase")
	}
}
