package stackvm

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Binary module format, little-endian throughout:
//
//	magic   "PIFTSVM1"
//	entry   str
//	nFuncs  u16, then per function (definition order):
//	  name str, params u8, locals u8, stack u16
//	  nInsns u32, then per instruction: op u8 + op-specific payload
//	    (i32.const: lit i32; str.const: str; local.*/stack.*: A u8;
//	     call: sym str; call.extern: A u8 + sym str; br/br_if: target str)
//	  nLabels u16, then per label: name str, idx u32
//	str     u16 length + bytes
//
// Decode re-runs the builder's full validation (minus extern resolution,
// which needs a runtime), so a decoded module is as trustworthy as a
// built one. This is the surface the decoder fuzz target exercises.

var magic = []byte("PIFTSVM1")

// Encode serializes a program. Output is canonical: label tables are
// sorted, so Encode∘Decode is a fixed point.
func Encode(p *Program) []byte {
	var out []byte
	u16 := func(v int) { out = append(out, byte(v), byte(v>>8)) }
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	str := func(s string) { u16(len(s)); out = append(out, s...) }

	out = append(out, magic...)
	str(p.Entry)
	u16(len(p.FuncNames))
	for _, name := range p.FuncNames {
		f := p.Funcs[name]
		str(f.Name)
		out = append(out, byte(f.Params), byte(f.Locals))
		u16(f.Stack)
		u32(uint32(len(f.Insns)))
		for _, in := range f.Insns {
			out = append(out, byte(in.Op))
			switch in.Op {
			case OpConst:
				u32(uint32(in.Lit))
			case OpConstStr:
				str(in.Str)
			case OpLocalGet, OpLocalSet, OpSave, OpRestore:
				out = append(out, byte(in.A))
			case OpCall:
				str(in.Sym)
			case OpCallExtern:
				out = append(out, byte(in.A))
				str(in.Sym)
			case OpBr, OpBrIf:
				str(in.Target)
			}
		}
		labels := make([]string, 0, len(f.Labels))
		for l := range f.Labels {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		u16(len(labels))
		for _, l := range labels {
			str(l)
			u32(uint32(f.Labels[l]))
		}
	}
	return out
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) fail(format string, args ...interface{}) error {
	return fmt.Errorf("stackvm: decode at %d: %s", d.off, fmt.Sprintf(format, args...))
}

func (d *decoder) u8() (byte, error) {
	if d.off+1 > len(d.buf) {
		return 0, d.fail("truncated u8")
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (int, error) {
	if d.off+2 > len(d.buf) {
		return 0, d.fail("truncated u16")
	}
	v := int(binary.LittleEndian.Uint16(d.buf[d.off:]))
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, d.fail("truncated u32")
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	if d.off+n > len(d.buf) {
		return "", d.fail("truncated string of %d bytes", n)
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s, nil
}

// Decode parses and validates a binary module. The returned program has
// passed the same structural checks Build performs (extern symbols are
// accepted as-is; resolution happens at translation time).
func Decode(data []byte) (*Program, error) {
	d := &decoder{buf: data}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, d.fail("bad magic")
	}
	d.off = len(magic)

	entry, err := d.str()
	if err != nil {
		return nil, err
	}
	nFuncs, err := d.u16()
	if err != nil {
		return nil, err
	}
	p := &Program{Name: "decoded", Entry: entry, Funcs: make(map[string]*Func)}
	for i := 0; i < nFuncs; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		if _, dup := p.Funcs[name]; dup {
			return nil, d.fail("duplicate function %q", name)
		}
		params, err := d.u8()
		if err != nil {
			return nil, err
		}
		locals, err := d.u8()
		if err != nil {
			return nil, err
		}
		stack, err := d.u16()
		if err != nil {
			return nil, err
		}
		nInsns, err := d.u32()
		if err != nil {
			return nil, err
		}
		// Every encoded instruction is at least one byte; reject counts the
		// remaining input cannot possibly hold before allocating.
		if int(nInsns) > len(d.buf)-d.off {
			return nil, d.fail("function %q claims %d instructions with %d bytes left",
				name, nInsns, len(d.buf)-d.off)
		}
		f := &Func{
			Name:   name,
			Params: int(params),
			Locals: int(locals),
			Stack:  stack,
			Insns:  make([]Insn, 0, nInsns),
			Labels: make(map[string]int),
		}
		for j := uint32(0); j < nInsns; j++ {
			op, err := d.u8()
			if err != nil {
				return nil, err
			}
			in := Insn{Op: Op(op)}
			switch in.Op {
			case OpConst:
				v, err := d.u32()
				if err != nil {
					return nil, err
				}
				in.Lit = int32(v)
			case OpConstStr:
				if in.Str, err = d.str(); err != nil {
					return nil, err
				}
			case OpLocalGet, OpLocalSet, OpSave, OpRestore:
				a, err := d.u8()
				if err != nil {
					return nil, err
				}
				in.A = int(a)
			case OpCall:
				if in.Sym, err = d.str(); err != nil {
					return nil, err
				}
			case OpCallExtern:
				a, err := d.u8()
				if err != nil {
					return nil, err
				}
				in.A = int(a)
				if in.Sym, err = d.str(); err != nil {
					return nil, err
				}
			case OpBr, OpBrIf:
				if in.Target, err = d.str(); err != nil {
					return nil, err
				}
			default:
				if in.Op >= opCount {
					return nil, d.fail("function %q insn %d: invalid opcode 0x%02x", name, j, op)
				}
			}
			f.Insns = append(f.Insns, in)
		}
		nLabels, err := d.u16()
		if err != nil {
			return nil, err
		}
		for j := 0; j < nLabels; j++ {
			l, err := d.str()
			if err != nil {
				return nil, err
			}
			idx, err := d.u32()
			if err != nil {
				return nil, err
			}
			if _, dup := f.Labels[l]; dup {
				return nil, d.fail("function %q: duplicate label %q", name, l)
			}
			f.Labels[l] = int(idx)
		}
		p.Funcs[name] = f
		p.FuncNames = append(p.FuncNames, name)
	}
	if d.off != len(d.buf) {
		return nil, d.fail("%d trailing bytes", len(d.buf)-d.off)
	}
	if err := validate(p, nil); err != nil {
		return nil, err
	}
	return p, nil
}
