package stackvm

import (
	"fmt"
	"sort"
)

// Insn is one decoded stack-bytecode instruction.
type Insn struct {
	Op     Op
	A      int    // local index, spill depth, call/extern arity
	Lit    int32  // i32.const immediate
	Str    string // str.const literal
	Sym    string // call / call.extern target
	Target string // br / br_if label
}

// Func is one function body.
type Func struct {
	Name   string
	Params int // locals 0..Params-1 are filled by the caller
	Locals int // extra locals beyond the parameters
	Stack  int // operand-stack slots reserved in the frame
	Insns  []Insn
	Labels map[string]int
}

// NumLocals is the frame's local-slot count (params + extras).
func (f *Func) NumLocals() int { return f.Params + f.Locals }

// Program is a linked stack-bytecode module.
type Program struct {
	Name      string
	Funcs     map[string]*Func
	FuncNames []string // definition order
	Entry     string
}

// ProgramName implements frontend.Program.
func (p *Program) ProgramName() string { return p.Name }

// Instructions counts the program's bytecode instructions.
func (p *Program) Instructions() int {
	n := 0
	for _, name := range p.FuncNames {
		n += len(p.Funcs[name].Insns)
	}
	return n
}

// OpCounts tallies instructions per opcode name (Figure 10 static
// frequency input).
func (p *Program) OpCounts() map[string]int {
	counts := make(map[string]int)
	for _, name := range p.FuncNames {
		for _, in := range p.Funcs[name].Insns {
			counts[in.Op.String()]++
		}
	}
	return counts
}

// Builder assembles a Program; obtain function builders with Func, then
// call Build to validate and link.
type Builder struct {
	prog *Program
}

// NewProgram starts a new stack-bytecode module.
func NewProgram(name string) *Builder {
	return &Builder{prog: &Program{
		Name:  name,
		Funcs: make(map[string]*Func),
	}}
}

// Func declares a function and returns its body builder. params locals
// are filled by the caller; extra locals and stack slots size the frame.
func (b *Builder) Func(name string, params, locals, stack int) *FuncBuilder {
	f := &Func{
		Name:   name,
		Params: params,
		Locals: locals,
		Stack:  stack,
		Labels: make(map[string]int),
	}
	b.prog.Funcs[name] = f
	b.prog.FuncNames = append(b.prog.FuncNames, name)
	return &FuncBuilder{f: f}
}

// Entry names the function executed at boot (must take no parameters).
func (b *Builder) Entry(name string) { b.prog.Entry = name }

// Build validates the module (labels, locals, call targets, operand-stack
// discipline) and returns the linked program. externs names the extern
// symbols the host runtime provides.
func (b *Builder) Build(externs map[string]bool) (*Program, error) {
	if err := validate(b.prog, externs); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// FuncBuilder appends instructions to one function body.
type FuncBuilder struct {
	f *Func
}

func (fb *FuncBuilder) emit(in Insn) *FuncBuilder {
	fb.f.Insns = append(fb.f.Insns, in)
	return fb
}

// Label marks the next instruction as a branch target.
func (fb *FuncBuilder) Label(name string) *FuncBuilder {
	fb.f.Labels[name] = len(fb.f.Insns)
	return fb
}

func (fb *FuncBuilder) Nop() *FuncBuilder { return fb.emit(Insn{Op: OpNop}) }
func (fb *FuncBuilder) Const(v int32) *FuncBuilder {
	return fb.emit(Insn{Op: OpConst, Lit: v})
}
func (fb *FuncBuilder) ConstStr(s string) *FuncBuilder {
	return fb.emit(Insn{Op: OpConstStr, Str: s})
}
func (fb *FuncBuilder) Drop() *FuncBuilder { return fb.emit(Insn{Op: OpDrop}) }
func (fb *FuncBuilder) Dup() *FuncBuilder  { return fb.emit(Insn{Op: OpDup}) }
func (fb *FuncBuilder) LocalGet(i int) *FuncBuilder {
	return fb.emit(Insn{Op: OpLocalGet, A: i})
}
func (fb *FuncBuilder) LocalSet(i int) *FuncBuilder {
	return fb.emit(Insn{Op: OpLocalSet, A: i})
}
func (fb *FuncBuilder) Add() *FuncBuilder     { return fb.emit(Insn{Op: OpAdd}) }
func (fb *FuncBuilder) Sub() *FuncBuilder     { return fb.emit(Insn{Op: OpSub}) }
func (fb *FuncBuilder) Mul() *FuncBuilder     { return fb.emit(Insn{Op: OpMul}) }
func (fb *FuncBuilder) And() *FuncBuilder     { return fb.emit(Insn{Op: OpAnd}) }
func (fb *FuncBuilder) Or() *FuncBuilder      { return fb.emit(Insn{Op: OpOr}) }
func (fb *FuncBuilder) Xor() *FuncBuilder     { return fb.emit(Insn{Op: OpXor}) }
func (fb *FuncBuilder) Shl() *FuncBuilder     { return fb.emit(Insn{Op: OpShl}) }
func (fb *FuncBuilder) Shr() *FuncBuilder     { return fb.emit(Insn{Op: OpShr}) }
func (fb *FuncBuilder) Eqz() *FuncBuilder     { return fb.emit(Insn{Op: OpEqz}) }
func (fb *FuncBuilder) Load() *FuncBuilder    { return fb.emit(Insn{Op: OpLoad}) }
func (fb *FuncBuilder) Load16() *FuncBuilder  { return fb.emit(Insn{Op: OpLoad16}) }
func (fb *FuncBuilder) Store() *FuncBuilder   { return fb.emit(Insn{Op: OpStore}) }
func (fb *FuncBuilder) Store16() *FuncBuilder { return fb.emit(Insn{Op: OpStore16}) }
func (fb *FuncBuilder) Br(target string) *FuncBuilder {
	return fb.emit(Insn{Op: OpBr, Target: target})
}
func (fb *FuncBuilder) BrIf(target string) *FuncBuilder {
	return fb.emit(Insn{Op: OpBrIf, Target: target})
}
func (fb *FuncBuilder) Call(sym string) *FuncBuilder {
	return fb.emit(Insn{Op: OpCall, Sym: sym})
}
func (fb *FuncBuilder) CallExtern(sym string, arity int) *FuncBuilder {
	return fb.emit(Insn{Op: OpCallExtern, Sym: sym, A: arity})
}
func (fb *FuncBuilder) Result() *FuncBuilder { return fb.emit(Insn{Op: OpResult}) }
func (fb *FuncBuilder) Ret() *FuncBuilder    { return fb.emit(Insn{Op: OpRet}) }
func (fb *FuncBuilder) RetVal() *FuncBuilder { return fb.emit(Insn{Op: OpRetVal}) }
func (fb *FuncBuilder) Save(k int) *FuncBuilder {
	return fb.emit(Insn{Op: OpSave, A: k})
}
func (fb *FuncBuilder) Restore(k int) *FuncBuilder {
	return fb.emit(Insn{Op: OpRestore, A: k})
}

// simState is the abstract machine state at one instruction boundary:
// operand-stack depth and native-spill depth (words pushed by stack.save
// not yet restored).
type simState struct {
	op, save int
}

// validate checks the whole module: the entry exists and takes no
// parameters, every label and call target resolves, local indices are in
// range, and a linear abstract interpretation proves the operand stack
// never under- or overflows, branch targets are reached at a consistent
// depth, and every path returns with an empty native-spill area. externs
// names the known extern symbols; a nil map skips extern resolution
// (used by the decoder, which has no runtime at hand).
func validate(p *Program, externs map[string]bool) error {
	if p.Entry == "" {
		return fmt.Errorf("stackvm %s: no entry function", p.Name)
	}
	entry, ok := p.Funcs[p.Entry]
	if !ok {
		return fmt.Errorf("stackvm %s: entry %q not defined", p.Name, p.Entry)
	}
	if entry.Params != 0 {
		return fmt.Errorf("stackvm %s: entry %q takes %d params, want 0",
			p.Name, p.Entry, entry.Params)
	}
	for _, name := range p.FuncNames {
		if err := validateFunc(p, p.Funcs[name], externs); err != nil {
			return err
		}
	}
	return nil
}

func validateFunc(p *Program, f *Func, externs map[string]bool) error {
	fail := func(idx int, format string, args ...interface{}) error {
		return fmt.Errorf("stackvm %s: %s+%d: %s",
			p.Name, f.Name, idx, fmt.Sprintf(format, args...))
	}
	if f.Params < 0 || f.Locals < 0 || f.Stack < 0 {
		return fmt.Errorf("stackvm %s: %s: negative frame shape", p.Name, f.Name)
	}
	if len(f.Insns) == 0 {
		return fmt.Errorf("stackvm %s: %s: empty body", p.Name, f.Name)
	}
	for name, idx := range f.Labels {
		if idx < 0 || idx >= len(f.Insns) {
			return fmt.Errorf("stackvm %s: %s: label %q marks instruction %d of %d",
				p.Name, f.Name, name, idx, len(f.Insns))
		}
	}

	// Abstract interpretation: one linear pass; forward branch states are
	// parked until reached, backward branches are checked against the
	// recorded entry state of their target.
	seen := make([]simState, len(f.Insns)) // entry state where visited
	known := make([]bool, len(f.Insns))    // seen[i] is valid
	pend := make(map[int]simState)         // parked forward-branch states
	resolveTarget := func(idx int, in Insn) (int, error) {
		t, ok := f.Labels[in.Target]
		if !ok {
			return 0, fail(idx, "%s: undefined label %q", in.Op, in.Target)
		}
		return t, nil
	}
	branch := func(idx, tIdx int, st simState) error {
		if tIdx <= idx {
			if !known[tIdx] {
				return fail(idx, "branch to unvisited earlier instruction %d", tIdx)
			}
			if seen[tIdx] != st {
				return fail(idx, "stack depth mismatch at backward target %d: have op=%d/save=%d, target expects op=%d/save=%d",
					tIdx, st.op, st.save, seen[tIdx].op, seen[tIdx].save)
			}
			return nil
		}
		if prev, ok := pend[tIdx]; ok && prev != st {
			return fail(idx, "stack depth mismatch at forward target %d: op=%d/save=%d vs op=%d/save=%d",
				tIdx, st.op, st.save, prev.op, prev.save)
		}
		pend[tIdx] = st
		return nil
	}

	cur := simState{}
	reachable := true
	for idx, in := range f.Insns {
		if st, ok := pend[idx]; ok {
			if reachable && cur != st {
				return fail(idx, "fallthrough depth op=%d/save=%d disagrees with branch-in depth op=%d/save=%d",
					cur.op, cur.save, st.op, st.save)
			}
			cur, reachable = st, true
			delete(pend, idx)
		}
		if !reachable {
			return fail(idx, "unreachable instruction")
		}
		seen[idx], known[idx] = cur, true

		need := func(n int) error {
			if cur.op < n {
				return fail(idx, "%s: operand stack underflow (depth %d, need %d)", in.Op, cur.op, n)
			}
			return nil
		}
		push := func(n int) error {
			cur.op += n
			if cur.op > f.Stack {
				return fail(idx, "%s: operand stack overflow (depth %d > %d slots)", in.Op, cur.op, f.Stack)
			}
			return nil
		}

		switch in.Op {
		case OpNop:
		case OpConst, OpConstStr, OpResult:
			if err := push(1); err != nil {
				return err
			}
		case OpDrop:
			if err := need(1); err != nil {
				return err
			}
			cur.op--
		case OpDup:
			if err := need(1); err != nil {
				return err
			}
			if err := push(1); err != nil {
				return err
			}
		case OpLocalGet, OpLocalSet:
			if in.A < 0 || in.A >= f.NumLocals() {
				return fail(idx, "%s: local %d out of range [0,%d)", in.Op, in.A, f.NumLocals())
			}
			if in.Op == OpLocalGet {
				if err := push(1); err != nil {
					return err
				}
			} else {
				if err := need(1); err != nil {
					return err
				}
				cur.op--
			}
		case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr:
			if err := need(2); err != nil {
				return err
			}
			cur.op--
		case OpEqz, OpLoad, OpLoad16:
			if err := need(1); err != nil {
				return err
			}
		case OpStore, OpStore16:
			if err := need(2); err != nil {
				return err
			}
			cur.op -= 2
		case OpBr:
			t, err := resolveTarget(idx, in)
			if err != nil {
				return err
			}
			if err := branch(idx, t, cur); err != nil {
				return err
			}
			reachable = false
		case OpBrIf:
			if err := need(1); err != nil {
				return err
			}
			cur.op--
			t, err := resolveTarget(idx, in)
			if err != nil {
				return err
			}
			if err := branch(idx, t, cur); err != nil {
				return err
			}
		case OpCall:
			callee, ok := p.Funcs[in.Sym]
			if !ok {
				return fail(idx, "call: undefined function %q", in.Sym)
			}
			if err := need(callee.Params); err != nil {
				return err
			}
			cur.op -= callee.Params
			f.Insns[idx].A = callee.Params
		case OpCallExtern:
			if in.A < 0 || in.A > 4 {
				return fail(idx, "call.extern %s: arity %d out of range [0,4]", in.Sym, in.A)
			}
			if externs != nil && !externs[in.Sym] {
				return fail(idx, "call.extern: unknown extern %q", in.Sym)
			}
			if err := need(in.A); err != nil {
				return err
			}
			cur.op -= in.A
		case OpRet, OpRetVal:
			if in.Op == OpRetVal {
				if err := need(1); err != nil {
					return err
				}
				cur.op--
			}
			if cur.save != 0 {
				return fail(idx, "%s with %d words still spilled by stack.save", in.Op, cur.save)
			}
			reachable = false
		case OpSave:
			if in.A < 1 || in.A > MaxSpill {
				return fail(idx, "stack.save: depth %d out of range [1,%d]", in.A, MaxSpill)
			}
			if err := need(in.A); err != nil {
				return err
			}
			cur.op -= in.A
			cur.save += in.A
		case OpRestore:
			if in.A < 1 || in.A > MaxSpill {
				return fail(idx, "stack.restore: depth %d out of range [1,%d]", in.A, MaxSpill)
			}
			if cur.save < in.A {
				return fail(idx, "stack.restore: %d words requested, %d spilled", in.A, cur.save)
			}
			cur.save -= in.A
			if err := push(in.A); err != nil {
				return err
			}
		default:
			return fail(idx, "invalid opcode 0x%02x", uint8(in.Op))
		}
	}
	if reachable {
		return fmt.Errorf("stackvm %s: %s: control falls off the end", p.Name, f.Name)
	}
	if len(pend) > 0 {
		var idxs []int
		for t := range pend {
			idxs = append(idxs, t)
		}
		sort.Ints(idxs)
		return fmt.Errorf("stackvm %s: %s: branch target %d is past a terminator but never reached linearly",
			p.Name, f.Name, idxs[0])
	}
	return nil
}
