package stackvm

import (
	"fmt"
	"strings"
)

// Dump renders a readable listing of the module (wat-flavoured).
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(module %s (entry %s)\n", p.Name, p.Entry)
	for _, name := range p.FuncNames {
		f := p.Funcs[name]
		fmt.Fprintf(&b, "  (func %s (params %d) (locals %d) (stack %d)\n",
			f.Name, f.Params, f.Locals, f.Stack)
		labelAt := make(map[int][]string)
		for l, idx := range f.Labels {
			labelAt[idx] = append(labelAt[idx], l)
		}
		for i, in := range f.Insns {
			for _, l := range labelAt[i] {
				fmt.Fprintf(&b, "  %s:\n", l)
			}
			fmt.Fprintf(&b, "    %3d: %s", i, in.Op)
			switch in.Op {
			case OpConst:
				fmt.Fprintf(&b, " %d", in.Lit)
			case OpConstStr:
				fmt.Fprintf(&b, " %q", in.Str)
			case OpLocalGet, OpLocalSet, OpSave, OpRestore:
				fmt.Fprintf(&b, " %d", in.A)
			case OpCall:
				fmt.Fprintf(&b, " %s", in.Sym)
			case OpCallExtern:
				fmt.Fprintf(&b, " %s/%d", in.Sym, in.A)
			case OpBr, OpBrIf:
				fmt.Fprintf(&b, " %s", in.Target)
			}
			b.WriteString("\n")
		}
		b.WriteString("  )\n")
	}
	b.WriteString(")\n")
	return b.String()
}
