// Imeileak reproduces the paper's §2 motivating example — msgZ = "type=sms"
// + "&imei=" + getDeviceId() + "&dummy" sent by SMS — and runs it under
// both PIFT and the exact register-level DIFT oracle, printing the verdicts
// and the relative tracking work.
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/dift"
	"repro/internal/jrt"
)

func buildPaperExample() (*dalvik.Program, error) {
	b := dalvik.NewProgram("Section2Example")
	m := b.Method("Main.main", 8, 0)
	// String msgX = "type=sms";
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.ConstString(1, "type=sms")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	// msgY = msgX + "&imei=" + telMan.getDeviceId();
	m.ConstString(1, "&imei=")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeStatic(android.MethodGetDeviceID)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodAppend, 0, 2)
	m.MoveResultObject(0)
	// msgZ = msgY + "&dummy";
	m.ConstString(1, "&dummy")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0)
	m.MoveResultObject(3)
	// sms.sendTextMessage(phNum, null, msgZ, ...);
	m.ConstString(4, "5550001")
	m.InvokeStatic(android.MethodSendSMS, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	return b.Build(android.KnownExterns())
}

func main() {
	prog, err := buildPaperExample()
	if err != nil {
		log.Fatal(err)
	}

	pift := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
	oracle := dift.New()
	res, err := android.Run(prog, android.RunOptions{
		Sinks: []cpu.EventSink{pift, oracle},
		Hooks: []cpu.InstrHook{oracle},
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Sinks[0]
	fmt.Printf("SMS to %q: %q\n", s.Dest, s.Payload)
	fmt.Printf("ground truth (content): leaked=%v\n", s.ContainsSecret)
	fmt.Printf("PIFT (loads+stores only): tainted=%v\n", pift.Verdicts()[0].Tainted)
	fmt.Printf("DIFT (every instruction): tainted=%v\n", oracle.Verdicts()[0].Tainted)

	ps, ds := pift.Stats(), oracle.Stats()
	fmt.Printf("\nwork comparison over %d instructions:\n", res.Instructions)
	fmt.Printf("  PIFT processed %d memory events\n", ps.Loads+ps.Stores)
	fmt.Printf("  DIFT processed %d instructions (%.1fx more)\n",
		ds.Instructions, float64(ds.Instructions)/float64(ps.Loads+ps.Stores))
}
