// Deferredscan demonstrates the paper's off-critical-path mode: "the
// load–store stream is buffered for delayed processing at a more convenient
// time (while trading prevention for detection, of course)". Several apps
// run with only a lightweight recorder attached; later, the kernel PIFT
// module scans the buffered streams — including a context-switch
// interleaving of all of them, exercising the per-process tagging of the
// hardware taint storage (Figure 6).
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/droidbench"
	"repro/internal/kernel"
	"repro/internal/trace"
)

func main() {
	// Pick a few apps from the benchmark suite.
	wanted := map[string]bool{
		"DirectImeiSms":   true, // leaky
		"BenignPlain0":    true, // benign
		"StaticPhoneSms":  true, // leaky
		"BenignFetchImei": true, // benign (fetches but never sends)
	}
	type run struct {
		name  string
		leaky bool
		rec   *trace.Recorder
	}
	var runs []run
	pid := uint32(1)
	for _, a := range droidbench.Suite() {
		if !wanted[a.Name] {
			continue
		}
		rec := trace.NewRecorder(1 << 12)
		if _, err := android.Run(a.Prog, android.RunOptions{
			PID:   pid,
			Sinks: []cpu.EventSink{rec}, // recording only: no tracker on the critical path
		}); err != nil {
			log.Fatal(err)
		}
		runs = append(runs, run{name: a.Name, leaky: a.Leaky, rec: rec})
		pid++
	}

	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	fmt.Printf("recorded %d app traces; scanning offline at %v\n\n", len(runs), cfg)

	// Scan each buffered stream individually.
	for _, r := range runs {
		leaks := kernel.ScanDeferred(cfg, nil, r.rec)
		fmt.Printf("%-18s designed-leaky=%-5v  deferred scan found %d leak(s)\n",
			r.name, r.leaky, len(leaks))
	}

	// Scan a context-switched interleaving of all four streams at once:
	// the module's per-process taint tagging keeps verdicts identical.
	var streams [][]cpu.Event
	for _, r := range runs {
		streams = append(streams, r.rec.Events)
	}
	merged := trace.Interleave(32, streams...)
	var leaks []kernel.LeakEvent
	mod := kernel.New(cfg, nil, func(e kernel.LeakEvent) { leaks = append(leaks, e) })
	for _, ev := range merged {
		mod.Event(ev)
	}
	fmt.Printf("\ninterleaved scan (%d events, quantum 32): %d leaks across PIDs:",
		len(merged), len(leaks))
	for _, l := range leaks {
		fmt.Printf(" pid%d", l.PID)
	}
	fmt.Println()
}
