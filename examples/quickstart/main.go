// Quickstart: build a tiny leaky app, attach a PIFT tracker, and watch it
// flag the sink — the minimal end-to-end use of this library.
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/jrt"
)

func main() {
	// 1. Write an Android-like app in the bytecode builder DSL: fetch
	// the device ID, concatenate it into a message, send it by SMS.
	b := dalvik.NewProgram("quickstart")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.ConstString(1, "stolen=")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeStatic(android.MethodGetDeviceID) // taint source
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodAppend, 0, 2)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0)
	m.MoveResultObject(3)
	m.ConstString(4, "13371337")
	m.InvokeStatic(android.MethodSendSMS, 4, 3) // taint sink
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(android.KnownExterns())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Create a PIFT tracker with the paper's parameters (NI=13, NT=3,
	// untainting on) and run the app on the simulated platform.
	tracker := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
	res, err := android.Run(prog, android.RunOptions{
		Sinks: []cpu.EventSink{tracker},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect what happened.
	fmt.Printf("executed %d instructions\n", res.Instructions)
	for _, s := range res.Sinks {
		fmt.Printf("sink call: %v to %q, payload %q\n", s.Kind, s.Dest, s.Payload)
	}
	for _, v := range tracker.Verdicts() {
		fmt.Printf("PIFT verdict: tainted=%v\n", v.Tainted)
	}
	st := tracker.Stats()
	fmt.Printf("tracker work: %d loads, %d stores, %d taint ops, %d untaint ops\n",
		st.Loads, st.Stores, st.TaintOps, st.UntaintOps)
}
