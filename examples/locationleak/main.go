// Locationleak demonstrates the paper's GPS finding: a numeric location
// leak passes through the ARM-runtime-ABI-style formatting helper, whose
// load→store distances defeat small tainting windows — "NI had to be at
// least 10 for PIFT to detect such a case". The example sweeps NI and
// prints where detection switches on.
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/jrt"
	"repro/internal/trace"
)

func buildLocationApp() (*dalvik.Program, error) {
	b := dalvik.NewProgram("LocationLeak")
	b.Class(android.LocationClass, "lat", "lon")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetLocation)
	m.MoveResultObject(0)
	m.Iget(1, 0, "Location.lat") // tainted primitive field
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(2)
	m.ConstString(3, "lat=")
	m.InvokeVirtual(jrt.MethodAppend, 2, 3)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodAppendInt, 2, 1) // number formatting
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodToString, 2)
	m.MoveResultObject(3)
	m.ConstString(4, "http://collect.example/loc")
	m.InvokeStatic(android.MethodSendHTTP, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	return b.Build(android.KnownExterns())
}

func main() {
	prog, err := buildLocationApp()
	if err != nil {
		log.Fatal(err)
	}

	// Record the trace once, then replay it at each window size — the
	// same record-once/sweep-many workflow the evaluation harness uses.
	rec := trace.NewRecorder(1 << 14)
	res, err := android.Run(prog, android.RunOptions{Sinks: []cpu.EventSink{rec}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("payload: %q (really leaks: %v)\n\n",
		res.Sinks[0].Payload, res.Sinks[0].ContainsSecret)

	fmt.Println("NI sweep at NT=3 (untainting on):")
	for ni := uint64(4); ni <= 14; ni++ {
		tr := core.NewTracker(core.Config{NI: ni, NT: 3, Untaint: true}, nil)
		rec.Replay(tr)
		detected := false
		for _, v := range tr.Verdicts() {
			detected = detected || v.Tainted
		}
		marker := ""
		if detected {
			marker = "  <-- detected"
		}
		fmt.Printf("  NI=%-3d %v%s\n", ni, detected, marker)
	}
	fmt.Printf("\n(the digit-emit path of the formatting helper spans %d instructions)\n",
		jrt.AppendIntLeadDistance)
}
