// Package pift's root benchmark harness: one testing.B benchmark per table
// and figure of the paper (regenerating the experiment end to end), plus
// micro-benchmarks of the components and the ablations called out in
// DESIGN.md (taint-store variants, untainting, PIFT-vs-DIFT work).
//
// Run with: go test -bench=. -benchmem
package pift

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dift"
	"repro/internal/eval"
	"repro/internal/malware"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/taint"
	"repro/internal/trace"
	"repro/internal/tracestat"
)

// benchScale keeps the LGRoot workload small enough for -bench runs while
// preserving the trace shape.
const benchScale = 4

// --- One benchmark per paper table/figure ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	h := eval.NewHarness(benchScale)
	if _, err := h.LGRootTrace(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure2(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	h := eval.NewHarness(benchScale)
	for i := 0; i < b.N; i++ {
		if r := eval.Figure10(h, 30); len(r.Apps) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	h := eval.NewHarness(benchScale)
	if _, err := eval.Figure11(h); err != nil { // warm the trace cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure11(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	h := eval.NewHarness(benchScale)
	for i := 0; i < b.N; i++ {
		r, err := eval.Headline(h)
		if err != nil {
			b.Fatal(err)
		}
		if r.FalsePositives != 0 || r.FalseNegatives != 1 {
			b.Fatalf("accuracy drifted: FP=%d FN=%d", r.FalsePositives, r.FalseNegatives)
		}
	}
}

func BenchmarkFigures12And13(b *testing.B) {
	h := eval.NewHarness(benchScale)
	rec, err := h.LGRootTrace()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tracestat.NewCollector()
		rec.Replay(c)
		c.Finish()
	}
}

func BenchmarkFigure14(b *testing.B) {
	h := eval.NewHarness(benchScale)
	if _, err := h.LGRootTrace(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure14(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigures15And16(b *testing.B) {
	h := eval.NewHarness(benchScale)
	if _, err := h.LGRootTrace(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.TimeSeries(h, 40); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure17(b *testing.B) {
	h := eval.NewHarness(benchScale)
	if _, err := h.LGRootTrace(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure17(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigures18And19(b *testing.B) {
	h := eval.NewHarness(benchScale)
	if _, err := h.LGRootTrace(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.UntaintEffect(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline sweeps the sharded asynchronous analyzer across
// worker counts on the multi-process Figure 10 workload (the full
// DroidBench corpus, one PID per app, interleaved round-robin). The
// events/sec metric is the scaling trajectory BENCH_*.json tracks.
func BenchmarkPipeline(b *testing.B) {
	h := eval.NewHarness(benchScale)
	wl, err := h.SuiteWorkload(64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pipeline.New(pipeline.Options{Workers: n, Config: cfg})
				wl.Replay(p)
				res := p.Close()
				if res.Events != uint64(wl.Len()) {
					b.Fatalf("dispatched %d events, want %d", res.Events, wl.Len())
				}
			}
			b.ReportMetric(float64(wl.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// --- Component micro-benchmarks ---

// BenchmarkCPUExecution measures raw simulated-instruction throughput on
// the LGRoot workload.
func BenchmarkCPUExecution(b *testing.B) {
	prog := malware.LGRoot(benchScale)
	var instructions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := android.Run(prog, android.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		instructions = res.Instructions
	}
	b.ReportMetric(float64(instructions), "instrs/op")
}

// BenchmarkTrackerThroughput measures PIFT event-processing speed on a
// recorded trace — the hot loop of every sweep.
func BenchmarkTrackerThroughput(b *testing.B) {
	rec := recordLGRoot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
		rec.Replay(tr)
	}
	b.ReportMetric(float64(rec.Len()), "events/op")
}

// BenchmarkPIFTvsDIFT compares the two trackers' live overhead on the same
// run, quantifying the "order of magnitude less frequent" claim.
func BenchmarkPIFTvsDIFT(b *testing.B) {
	prog := malware.LGRoot(1)
	b.Run("pift", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
			if _, err := android.Run(prog, android.RunOptions{
				Sinks: []cpu.EventSink{tr},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dift", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := dift.New()
			if _, err := android.Run(prog, android.RunOptions{
				Sinks: []cpu.EventSink{tr},
				Hooks: []cpu.InstrHook{tr},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRangeSet measures the taint interval-set operations.
func BenchmarkRangeSet(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ops := make([]mem.Range, 4096)
	for i := range ops {
		ops[i] = mem.MakeRange(mem.Addr(rng.Intn(1<<20)), uint32(rng.Intn(64)+1))
	}
	b.Run("add", func(b *testing.B) {
		var s taint.RangeSet
		for i := 0; i < b.N; i++ {
			s.Add(ops[i%len(ops)])
		}
	})
	b.Run("query", func(b *testing.B) {
		var s taint.RangeSet
		for _, r := range ops[:512] {
			s.Add(r)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Overlaps(ops[i%len(ops)])
		}
	})
	b.Run("remove", func(b *testing.B) {
		var s taint.RangeSet
		for _, r := range ops {
			s.Add(r)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Remove(ops[i%len(ops)])
			if i%64 == 0 {
				s.Add(ops[(i*7)%len(ops)])
			}
		}
	})
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationTaintStores replays the LGRoot trace against the three
// taint-storage designs of §3.3: the unbounded ideal store, the bounded
// range cache (LRU and drop policies), and the fixed-granularity word
// store.
func BenchmarkAblationTaintStores(b *testing.B) {
	rec := recordLGRoot(b)
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	stores := []struct {
		name string
		mk   func() core.Store
	}{
		{"ideal", func() core.Store { return core.NewIdealStore() }},
		{"cache32K-lru", func() core.Store { return core.NewRangeCacheBytes(32*1024, core.EvictLRU) }},
		{"cache1K-lru", func() core.Store { return core.NewRangeCache(85, core.EvictLRU) }},
		{"cache1K-drop", func() core.Store { return core.NewRangeCache(85, core.EvictDrop) }},
		{"word4", func() core.Store { return core.NewWordStore(2) }},
		{"mondrian", func() core.Store { return core.NewMondrianStore() }},
	}
	for _, s := range stores {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := core.NewTracker(cfg, s.mk())
				rec.Replay(tr)
			}
		})
	}
}

// BenchmarkAblationUntainting compares tracker work with the untainting
// rule on and off.
func BenchmarkAblationUntainting(b *testing.B) {
	rec := recordLGRoot(b)
	for _, untaint := range []bool{true, false} {
		name := "untaint-on"
		if !untaint {
			name = "untaint-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: untaint}, nil)
				rec.Replay(tr)
			}
		})
	}
}

// BenchmarkAblationWindowSize shows tracker cost growth across NI.
func BenchmarkAblationWindowSize(b *testing.B) {
	rec := recordLGRoot(b)
	for _, ni := range []uint64{2, 5, 10, 15, 20} {
		b.Run(coreConfigName(ni), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := core.NewTracker(core.Config{NI: ni, NT: 3, Untaint: true}, nil)
				rec.Replay(tr)
			}
		})
	}
}

func coreConfigName(ni uint64) string {
	return core.Config{NI: ni, NT: 3, Untaint: true}.String()
}

var cachedLGRoot *trace.Recorder

func recordLGRoot(b *testing.B) *trace.Recorder {
	b.Helper()
	if cachedLGRoot == nil {
		rec, err := eval.Record(malware.LGRoot(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		cachedLGRoot = rec
	}
	return cachedLGRoot
}
