package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
)

// runServe turns piftrun into the long-lived multi-tenant taint service:
// the analysis core behind an HTTP ingestion boundary, one logical
// tracker session per tenant, sessions spilling to disk under the memory
// budget. The data plane shares one listener with /metrics, /healthz and
// /debug/pprof, so the process is scrapeable out of the box.
func runServe(addr, spillDir string, budget int64, maxStreams int, cfg core.Config) error {
	if addr == "" {
		return errors.New("-serve requires -http ADDR")
	}
	if spillDir == "" {
		d, err := os.MkdirTemp("", "pift-spill-*")
		if err != nil {
			return err
		}
		spillDir = d
	}
	reg := metrics.NewRegistry()
	srv, err := server.New(server.Config{
		Tracker:      cfg,
		SpillDir:     spillDir,
		MemoryBudget: budget,
		MaxStreams:   maxStreams,
		Registry:     reg,
	})
	if err != nil {
		return err
	}
	mux := metrics.NewServeMux(reg)
	srv.Register(mux)

	hs := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	_, spilled := srv.SessionCount()
	fmt.Printf("serving taint sessions on %s (tracker %v)\n", addr, cfg)
	fmt.Printf("  spill dir %s (budget %d bytes, %d sessions recovered)\n", spillDir, budget, spilled)
	fmt.Printf("  POST /v1/sessions/{id}/events to ingest; /metrics for series\n")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(ctx)
}
