package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
)

// runServe turns piftrun into the long-lived multi-tenant taint service:
// the analysis core behind an HTTP ingestion boundary, one logical
// tracker session per tenant, sessions spilling to disk under the memory
// budget, hot sessions fanning ingest out over the sharded pipeline. The
// data plane shares one listener with /metrics, /healthz and
// /debug/pprof, so the process is scrapeable out of the box.
func runServe(addr string, scfg server.Config, cfg core.Config) error {
	if addr == "" {
		return errors.New("-serve requires -http ADDR")
	}
	if scfg.SpillDir == "" {
		d, err := os.MkdirTemp("", "pift-spill-*")
		if err != nil {
			return err
		}
		scfg.SpillDir = d
	}
	reg := metrics.NewRegistry()
	scfg.Tracker = cfg
	scfg.Registry = reg
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	mux := metrics.NewServeMux(reg)
	srv.Register(mux)

	hs := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	_, spilled := srv.SessionCount()
	fmt.Printf("serving taint sessions on %s (tracker %v)\n", addr, cfg)
	fmt.Printf("  spill dir %s (budget %d bytes, %d sessions recovered)\n", scfg.SpillDir, scfg.MemoryBudget, spilled)
	w := "auto"
	if scfg.IngestWorkers > 0 {
		w = fmt.Sprint(scfg.IngestWorkers)
	}
	fmt.Printf("  parallel ingest: %s workers/session (1 disables)\n", w)
	fmt.Printf("  POST /v1/sessions/{id}/events to ingest; /metrics for series\n")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(ctx)
}
