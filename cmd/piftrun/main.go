// Command piftrun executes one benchmark application or malware sample
// under PIFT (and optionally the exact DIFT oracle) and reports every sink
// call with both verdicts.
//
// Usage:
//
//	piftrun -list [-frontend dalvik|stackvm]
//	piftrun -app DirectImeiSms [-frontend dalvik] [-ni 13] [-nt 3] [-untaint=true]
//	        [-dift] [-workers N]
//	        [-checkpoint-dir DIR [-checkpoint-every N] [-resume]] [-http :8080]
//
// -frontend selects the guest VM whose benchmark suite supplies the apps:
// the Dalvik-style register VM (default, plus the malware samples) or the
// wasm-style stack VM. Both lower to the same ARM event stream, so every
// analysis option works unchanged on either.
//
//	piftrun -serve -http :8080 [-spill-dir DIR] [-spill-budget BYTES] [-max-streams N]
//	        [-ingest-workers N] [-worker-budget N] [-parallel-threshold N] [-commit-every N]
//
// -workers N routes the event stream through the sharded asynchronous
// analysis pipeline (internal/pipeline) instead of the in-line tracker.
//
// -checkpoint-dir DIR writes a pipeline checkpoint (ckpt-<offset>.pift)
// every -checkpoint-every events; -resume restores the newest one and
// skips the events it already covers, which is sound because app
// execution is deterministic. Both require -workers.
//
// -http ADDR serves the run's metrics registry on ADDR for the duration
// of the process: /metrics (Prometheus text), /metrics.json, /healthz,
// and the standard /debug/pprof endpoints. The process stays alive after
// the run completes (for scraping) until interrupted.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dift"
	"repro/internal/droidbench"
	"repro/internal/frontend"
	"repro/internal/malware"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/server"
)

func main() {
	list := flag.Bool("list", false, "list available applications")
	feName := flag.String("frontend", "dalvik", "guest front end: dalvik or stackvm")
	app := flag.String("app", "", "application or malware sample name")
	ni := flag.Uint64("ni", 13, "tainting window size NI")
	nt := flag.Int("nt", 3, "max propagations per window NT")
	untaint := flag.Bool("untaint", true, "enable the untainting rule")
	withDift := flag.Bool("dift", false, "also run the exact register-level tracker")
	workers := flag.Int("workers", 0, "analyze on the sharded asynchronous pipeline with N workers (0 = synchronous tracker)")
	ckptDir := flag.String("checkpoint-dir", "", "write periodic pipeline checkpoints into this directory (requires -workers)")
	ckptEvery := flag.Uint64("checkpoint-every", 4096, "events between checkpoints for -checkpoint-dir")
	resume := flag.Bool("resume", false, "restore the newest checkpoint in -checkpoint-dir and skip the events it already covers")
	dump := flag.Bool("dump", false, "print the app's bytecode listing before running")
	modeName := flag.String("mode", "interp", "execution tier: interp, jit, or aot (§4.1)")
	httpAddr := flag.String("http", "", "serve /metrics, /healthz, and /debug/pprof on this address (e.g. :8080); keeps the process alive after the run")
	serve := flag.Bool("serve", false, "run as a long-lived multi-tenant taint service on -http instead of executing one app")
	spillDir := flag.String("spill-dir", "", "serve: directory for dehydrated session snapshots (empty = fresh temp dir)")
	spillBudget := flag.Int64("spill-budget", 64<<20, "serve: resident-bytes budget before cold sessions spill to disk")
	maxStreams := flag.Int("max-streams", 64, "serve: maximum concurrent ingest streams")
	ingestWorkers := flag.Int("ingest-workers", 0, "serve: pipeline shards per hot session (0 = GOMAXPROCS-capped auto, 1 disables parallel ingest)")
	workerBudget := flag.Int("worker-budget", 0, "serve: global cap on pipeline workers loaned across concurrent sessions (0 = auto)")
	parallelThreshold := flag.Uint64("parallel-threshold", 0, "serve: minimum remaining events in a request before it fans out (0 = default 65536)")
	commitEvery := flag.Uint64("commit-every", 0, "serve: ack-boundary alignment for streamed parallel ingests (0 = default 65536)")
	flag.Parse()

	if *serve {
		cfg := core.Config{NI: *ni, NT: *nt, Untaint: *untaint}
		scfg := server.Config{
			SpillDir:          *spillDir,
			MemoryBudget:      *spillBudget,
			MaxStreams:        *maxStreams,
			IngestWorkers:     *ingestWorkers,
			WorkerBudget:      *workerBudget,
			ParallelThreshold: *parallelThreshold,
			CommitEvery:       *commitEvery,
		}
		if err := runServe(*httpAddr, scfg, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "piftrun: serve:", err)
			os.Exit(1)
		}
		return
	}

	var mode frontend.Mode
	switch *modeName {
	case "interp":
		mode = frontend.ModeInterp
	case "jit":
		mode = frontend.ModeJIT
	case "aot":
		mode = frontend.ModeAOT
	default:
		fmt.Fprintf(os.Stderr, "piftrun: unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	suite, err := droidbench.SuiteFor(*feName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piftrun:", err)
		os.Exit(2)
	}
	programs := map[string]frontend.Program{}
	var order []string
	for _, a := range suite.Apps() {
		programs[a.Name] = a.Prog
		order = append(order, a.Name)
	}
	// The malware corpus is Dalvik bytecode; it rides along with the
	// matching front end only.
	if suite.Frontend().Name() == "dalvik" {
		for _, s := range malware.Samples() {
			programs[s.Name] = s.Prog
			order = append(order, s.Name)
		}
	}

	if *list {
		for _, name := range order {
			fmt.Println(name)
		}
		return
	}
	prog, ok := programs[*app]
	if !ok {
		fmt.Fprintf(os.Stderr, "piftrun: unknown app %q (use -list)\n", *app)
		os.Exit(2)
	}

	if *dump {
		fmt.Print(prog.Dump())
		fmt.Println()
	}

	cfg := core.Config{NI: *ni, NT: *nt, Untaint: *untaint}

	// -http instruments every layer of the run against one registry and
	// serves it before the workload starts, so a scraper watching /metrics
	// sees counters move live.
	var reg *metrics.Registry
	if *httpAddr != "" {
		reg = metrics.NewRegistry()
		srv := &http.Server{Addr: *httpAddr, Handler: metrics.NewServeMux(reg)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "piftrun: http:", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("serving /metrics, /healthz, /debug/pprof on %s\n", *httpAddr)
	}

	// With -workers N the machine's event stream is consumed
	// asynchronously by the sharded pipeline — the paper's decoupled
	// analysis core — instead of the in-line sequential tracker. Both
	// paths end with the same stats and verdicts.
	var (
		pift *core.Tracker
		pipe *pipeline.Pipeline
		sink cpu.EventSink
	)
	if (*ckptDir != "" || *resume) && *workers <= 0 {
		fmt.Fprintln(os.Stderr, "piftrun: -checkpoint-dir and -resume require -workers N")
		os.Exit(2)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "piftrun: -resume requires -checkpoint-dir")
		os.Exit(2)
	}
	var ckpt *checkpointer
	switch {
	case *workers > 0:
		popts := pipeline.Options{Workers: *workers, Config: cfg, Metrics: reg}
		if *resume {
			var path string
			var err error
			pipe, path, err = restorePipeline(*ckptDir, popts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "piftrun: resume:", err)
				os.Exit(1)
			}
			fmt.Printf("resumed from %s at event offset %d\n", path, pipe.Offset())
		} else {
			pipe = pipeline.New(popts)
		}
		sink = pipe
		if *ckptDir != "" {
			if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "piftrun:", err)
				os.Exit(1)
			}
			ckpt = &checkpointer{pipe: pipe, dir: *ckptDir, every: *ckptEvery, skip: pipe.Offset()}
			sink = ckpt
		}
	case *workers < 0:
		fmt.Fprintf(os.Stderr, "piftrun: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	default:
		pift = core.NewTracker(cfg, nil)
		if reg != nil {
			pift.SetMetrics(core.NewTrackerMetrics(reg))
		}
		sink = pift
	}
	opts := android.RunOptions{Sinks: []cpu.EventSink{sink}, Mode: mode, Metrics: reg}
	var exact *dift.Tracker
	if *withDift {
		exact = dift.New()
		if reg != nil {
			exact.SetMetrics(dift.NewOracleMetrics(reg))
		}
		opts.Sinks = append(opts.Sinks, exact)
		opts.Hooks = append(opts.Hooks, exact)
	}

	res, runErr := android.Run(prog, opts)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "piftrun:", runErr)
		os.Exit(1)
	}
	var (
		verdicts []core.SinkVerdict
		st       core.Stats
	)
	if pipe != nil {
		merged := pipe.Close()
		verdicts, st = merged.Verdicts, merged.Stats
	} else {
		verdicts, st = pift.Verdicts(), pift.Stats()
	}
	if ckpt != nil && ckpt.err != nil {
		fmt.Fprintln(os.Stderr, "piftrun: checkpointing stopped:", ckpt.err)
	}

	fmt.Printf("%s: %d instructions, %d sink call(s), tracker %v\n",
		*app, res.Instructions, len(res.Sinks), cfg)
	if pipe != nil {
		fmt.Printf("  analyzed asynchronously on %d pipeline worker(s)\n", pipe.Workers())
	}
	piftByTag := map[int]bool{}
	for _, v := range verdicts {
		piftByTag[v.Tag] = v.Tainted
	}
	diftByTag := map[int]bool{}
	if exact != nil {
		for _, v := range exact.Verdicts() {
			diftByTag[v.Tag] = v.Tainted
		}
	}
	for i, s := range res.Sinks {
		fmt.Printf("  sink %d (%v to %q): payload=%q\n", i+1, s.Kind, s.Dest, s.Payload)
		fmt.Printf("    contains-secret=%v pift-tainted=%v", s.ContainsSecret, piftByTag[s.Tag])
		if exact != nil {
			fmt.Printf(" dift-tainted=%v", diftByTag[s.Tag])
		}
		fmt.Println()
	}
	fmt.Printf("  pift: %d loads, %d stores, %d tainted loads, %d taint ops, %d untaint ops, max %dB/%d ranges\n",
		st.Loads, st.Stores, st.TaintedLoads, st.TaintOps, st.UntaintOps, st.MaxBytes, st.MaxRanges)
	if exact != nil {
		ds := exact.Stats()
		fmt.Printf("  dift: %d instructions shadow-processed (%.1fx PIFT's %d memory events)\n",
			ds.Instructions,
			float64(ds.Instructions)/float64(st.Loads+st.Stores),
			st.Loads+st.Stores)
	}

	if *httpAddr != "" {
		// Keep the endpoints up so the final counters can be scraped;
		// exit on the usual signals.
		fmt.Printf("run complete; still serving %s (interrupt to exit)\n", *httpAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}
