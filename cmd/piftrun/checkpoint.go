package main

// Checkpoint plumbing for -checkpoint-dir / -resume. App execution is
// deterministic (the simulated platform replays the same instruction
// stream every run), so resuming does not need the original event spool:
// the app is re-executed and the events already covered by the restored
// checkpoint are discarded before they reach the pipeline.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/atomicfile"
	"repro/internal/cpu"
	"repro/internal/pipeline"
)

// checkpointer sits between the machine and the pipeline: it skips the
// first `skip` events (already analyzed before the restored checkpoint),
// forwards the rest, and writes a checkpoint file every `every` events.
// The first write error latches and disables further checkpoints; the
// analysis itself keeps running.
type checkpointer struct {
	pipe  *pipeline.Pipeline
	dir   string
	every uint64
	skip  uint64
	seen  uint64
	err   error
}

func (c *checkpointer) Event(ev cpu.Event) {
	c.seen++
	if c.seen <= c.skip {
		return
	}
	c.pipe.Event(ev)
	if c.every > 0 && c.seen%c.every == 0 && c.err == nil {
		c.err = writeCheckpointFile(c.pipe, c.dir, c.seen)
	}
}

// writeCheckpointFile writes ckpt-<offset>.pift atomically, so a crash
// mid-write never leaves a torn checkpoint as the newest file in the
// directory.
func writeCheckpointFile(p *pipeline.Pipeline, dir string, offset uint64) error {
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%016d.pift", offset))
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := p.WriteCheckpoint(w)
		return err
	})
}

// latestCheckpoint returns the newest checkpoint file in dir — offsets
// are zero-padded, so lexicographic order is numeric order.
func latestCheckpoint(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".pift") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no ckpt-*.pift files in %s", dir)
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}

// restorePipeline restores the newest checkpoint in dir. The checkpoint
// carries the authoritative worker count and tracker config; passing the
// command-line values through lets Restore reject a mismatch loudly
// instead of resuming under different semantics.
func restorePipeline(dir string, opts pipeline.Options) (*pipeline.Pipeline, string, error) {
	path, err := latestCheckpoint(dir)
	if err != nil {
		return nil, "", err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	p, err := pipeline.Restore(f, opts)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return p, path, nil
}
