// Command benchgate is the CI performance-regression gate: it compares a
// freshly measured piftbench pipeline artifact against the committed
// baseline and exits nonzero when the candidate regresses events/sec by
// more than the threshold at any worker count, when any parity row in
// the candidate diverged from the sequential tracker, or when the
// candidate's steady-state allocation rate exceeds the alloc budget.
//
// Usage:
//
//	benchgate -baseline BENCH_pipeline.json -current BENCH_current.json \
//	    [-threshold 0.25] [-max-allocs-per-event 0.01] [-summary out.md] \
//	    [-min-scaling 1.5] [-min-scaling-workers 4] \
//	    [-max-bytes-per-event 6.0] [-min-decode-ratio 0.75] \
//	    [-server-baseline BENCH_server.json -server-current BENCH_server_current.json] \
//	    [-server-threshold 0.25] [-min-server-scaling 1.5] [-min-server-scaling-workers 4]
//
// The gate only fails on regressions — a faster candidate passes — and a
// worker count present in the baseline but missing from the candidate is
// a failure, since the gate cannot certify what it did not measure.
// -min-scaling additionally enforces an absolute floor on the
// candidate's shard-owned synthetic speedup at -min-scaling-workers
// workers; it is skipped (with a notice) when the measuring machine's
// recorded NumCPU is below that worker count, because a machine without
// the cores physically cannot exhibit the speedup being gated.
// -max-bytes-per-event caps the candidate's average PIFTTRC2 wire cost
// over its compression table, and -min-decode-ratio floors the v2/v1
// decode-throughput ratio (both negative = off); these are absolute
// properties of the candidate, no baseline needed.
// -summary appends a benchstat-style old/new markdown table to the given
// file (CI passes $GITHUB_STEP_SUMMARY) in addition to the stdout report.
//
// -server-baseline/-server-current gate the serving layer the same way
// against piftbench -exp server artifacts (both empty = server gate off):
// per-worker-count events/sec regression bounded by -server-threshold,
// and -min-server-scaling enforcing a floor on the parallel-ingest
// speedup at -min-server-scaling-workers workers, with the same
// recorded-NumCPU skip as -min-scaling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
)

func main() {
	baseline := flag.String("baseline", "BENCH_pipeline.json", "committed baseline artifact")
	current := flag.String("current", "BENCH_current.json", "freshly measured artifact")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated events/sec regression (fraction)")
	maxAllocs := flag.Float64("max-allocs-per-event", 0.01, "maximum steady-state allocs per event in the candidate (the slack covers a GC emptying the batch sync.Pool mid-measurement; negative disables)")
	minScaling := flag.Float64("min-scaling", -1, "minimum shard-owned synthetic speedup at -min-scaling-workers workers (negative disables; skipped when the candidate's NumCPU is below the worker count)")
	minScalingWorkers := flag.Int("min-scaling-workers", 4, "worker count the -min-scaling floor applies to")
	maxBytesPerEvent := flag.Float64("max-bytes-per-event", -1, "maximum average PIFTTRC2 wire bytes per event in the candidate's compression table (negative disables)")
	minDecodeRatio := flag.Float64("min-decode-ratio", -1, "minimum v2/v1 decode-throughput ratio in the candidate (negative disables)")
	summary := flag.String("summary", "", "append a markdown old/new table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	serverBase := flag.String("server-baseline", "", "committed server baseline artifact (piftbench -exp server); empty disables the server gate")
	serverCur := flag.String("server-current", "", "freshly measured server artifact")
	serverThreshold := flag.Float64("server-threshold", 0.25, "maximum tolerated server events/sec regression (fraction)")
	minServerScaling := flag.Float64("min-server-scaling", -1, "minimum parallel-ingest speedup at -min-server-scaling-workers workers (negative disables; skipped when the candidate's NumCPU is below the worker count)")
	minServerScalingWorkers := flag.Int("min-server-scaling-workers", 4, "worker count the -min-server-scaling floor applies to")
	flag.Parse()
	if *threshold < 0 || *threshold >= 1 {
		fmt.Fprintf(os.Stderr, "benchgate: -threshold %v out of range [0, 1)\n", *threshold)
		os.Exit(2)
	}

	failed := false
	var md strings.Builder
	if *baseline != "" || *current != "" {
		if gatePipeline(&md, *baseline, *current, *threshold, *maxAllocs, *minScaling, *minScalingWorkers) {
			failed = true
		}
		if gateWire(&md, *current, *maxBytesPerEvent, *minDecodeRatio) {
			failed = true
		}
	}
	if *serverBase != "" || *serverCur != "" {
		if gateServer(&md, *serverBase, *serverCur, *serverThreshold, *minServerScaling, *minServerScalingWorkers) {
			failed = true
		}
	}
	if (*baseline == "" && *current == "") && (*serverBase == "" && *serverCur == "") {
		fmt.Fprintln(os.Stderr, "benchgate: nothing to gate (all artifact paths empty)")
		os.Exit(2)
	}

	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		fatal(err)
		_, err = f.WriteString(md.String())
		fatal(err)
		fatal(f.Close())
	}

	if failed {
		fmt.Println("benchgate: FAILED")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// gatePipeline runs the original pipeline-artifact comparison. Reports
// failure.
func gatePipeline(md *strings.Builder, basePath, curPath string, threshold, maxAllocs, minScaling float64, minScalingWorkers int) bool {
	base, err := load(basePath)
	fatal(err)
	cur, err := load(curPath)
	fatal(err)

	failed := false
	for _, row := range cur.Parity {
		if !row.Match {
			fmt.Printf("FAIL parity: %s @ %d workers diverged from the sequential tracker\n", row.App, row.Workers)
			failed = true
		}
	}

	md.WriteString("### benchgate: pipeline events/sec, old vs new\n\n")
	md.WriteString("| workers | baseline ev/s | current ev/s | delta | status |\n")
	md.WriteString("|--:|--:|--:|--:|:--|\n")

	curBy := map[int]eval.PipelineScalingRow{}
	for _, row := range cur.Scaling {
		curBy[row.Workers] = row
	}
	for _, b := range base.Scaling {
		c, ok := curBy[b.Workers]
		if !ok {
			fmt.Printf("FAIL %2d workers: baseline has this point, candidate did not measure it\n", b.Workers)
			fmt.Fprintf(md, "| %d | %.0f | — | — | FAIL (unmeasured) |\n", b.Workers, b.PerSecond)
			failed = true
			continue
		}
		delta := c.PerSecond/b.PerSecond - 1
		status := "ok  "
		if delta < -threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %2d workers: %12.0f ev/s vs baseline %12.0f (%+.1f%%, limit -%.0f%%)\n",
			status, b.Workers, c.PerSecond, b.PerSecond, delta*100, threshold*100)
		fmt.Fprintf(md, "| %d | %.0f | %.0f | %+.1f%% | %s |\n",
			b.Workers, b.PerSecond, c.PerSecond, delta*100, strings.TrimSpace(status))
	}

	allocStatus := "ok"
	if maxAllocs >= 0 && cur.AllocsPerEvent > maxAllocs {
		fmt.Printf("FAIL allocs: %.4f allocs/event steady state, budget %.4f\n", cur.AllocsPerEvent, maxAllocs)
		allocStatus = "FAIL"
		failed = true
	} else {
		fmt.Printf("ok   allocs: %.4f allocs/event steady state (budget %.4f)\n", cur.AllocsPerEvent, maxAllocs)
	}
	fmt.Fprintf(md, "\nsteady-state allocs/event: **%.4f** (budget %.4f) — %s\n",
		cur.AllocsPerEvent, maxAllocs, allocStatus)

	if minScaling >= 0 {
		var row *eval.PipelineScalingRow
		for i := range cur.Synthetic {
			if cur.Synthetic[i].Workers == minScalingWorkers {
				row = &cur.Synthetic[i]
				break
			}
		}
		switch {
		case row == nil:
			fmt.Printf("FAIL scaling: candidate has no synthetic scaling row at %d workers — the gate cannot certify what it did not measure\n",
				minScalingWorkers)
			fmt.Fprintf(md, "\nshard-owned speedup @ %d workers: **unmeasured** (floor %.2fx) — FAIL\n",
				minScalingWorkers, minScaling)
			failed = true
		case cur.NumCPU < minScalingWorkers:
			fmt.Printf("skip scaling: candidate measured on %d CPUs, cannot exhibit a %d-worker speedup; floor %.2fx not enforced\n",
				cur.NumCPU, minScalingWorkers, minScaling)
			fmt.Fprintf(md, "\nshard-owned speedup @ %d workers: %.2fx on %d CPUs — floor %.2fx skipped\n",
				minScalingWorkers, row.Speedup, cur.NumCPU, minScaling)
		case row.Speedup < minScaling:
			fmt.Printf("FAIL scaling: shard-owned speedup %.2fx at %d workers, floor %.2fx (NumCPU %d)\n",
				row.Speedup, minScalingWorkers, minScaling, cur.NumCPU)
			fmt.Fprintf(md, "\nshard-owned speedup @ %d workers: **%.2fx** (floor %.2fx) — FAIL\n",
				minScalingWorkers, row.Speedup, minScaling)
			failed = true
		default:
			fmt.Printf("ok   scaling: shard-owned speedup %.2fx at %d workers (floor %.2fx, NumCPU %d)\n",
				row.Speedup, minScalingWorkers, minScaling, cur.NumCPU)
			fmt.Fprintf(md, "\nshard-owned speedup @ %d workers: **%.2fx** (floor %.2fx) — ok\n",
				minScalingWorkers, row.Speedup, minScaling)
		}
	}
	return failed
}

// gateWire enforces the wire-format gates on the candidate artifact:
// -max-bytes-per-event caps the event-weighted average PIFTTRC2 wire
// cost over the compression table, and -min-decode-ratio floors v2
// decode throughput relative to v1 — the compressed format must not buy
// its bytes with decode time. A gate asked of an artifact that carries
// no wire data fails: the gate cannot certify what was not measured.
// Reports failure.
func gateWire(md *strings.Builder, curPath string, maxBytesPerEvent, minDecodeRatio float64) bool {
	if maxBytesPerEvent < 0 && minDecodeRatio < 0 {
		return false
	}
	cur, err := load(curPath)
	fatal(err)

	failed := false
	md.WriteString("\n### benchgate: wire format\n\n")
	if maxBytesPerEvent >= 0 {
		switch {
		case len(cur.Wire) == 0 || cur.BytesPerEventV2 <= 0:
			fmt.Println("FAIL wire: candidate has no compression table — the gate cannot certify what it did not measure")
			fmt.Fprintf(md, "v2 bytes/event: **unmeasured** (cap %.2f) — FAIL\n", maxBytesPerEvent)
			failed = true
		case cur.BytesPerEventV2 > maxBytesPerEvent:
			fmt.Printf("FAIL wire: %.2f bytes/event average across %d corpora, cap %.2f\n",
				cur.BytesPerEventV2, len(cur.Wire), maxBytesPerEvent)
			fmt.Fprintf(md, "v2 bytes/event: **%.2f** (cap %.2f) — FAIL\n", cur.BytesPerEventV2, maxBytesPerEvent)
			failed = true
		default:
			fmt.Printf("ok   wire: %.2f bytes/event average across %d corpora (cap %.2f)\n",
				cur.BytesPerEventV2, len(cur.Wire), maxBytesPerEvent)
			fmt.Fprintf(md, "v2 bytes/event: **%.2f** (cap %.2f) — ok\n", cur.BytesPerEventV2, maxBytesPerEvent)
		}
	}
	if minDecodeRatio >= 0 {
		switch {
		case cur.DecodeV1PerSec <= 0 || cur.DecodeV2PerSec <= 0:
			fmt.Println("FAIL decode: candidate has no decode-throughput measurement — the gate cannot certify what it did not measure")
			fmt.Fprintf(md, "v2/v1 decode ratio: **unmeasured** (floor %.2f) — FAIL\n", minDecodeRatio)
			failed = true
		default:
			ratio := cur.DecodeV2PerSec / cur.DecodeV1PerSec
			if ratio < minDecodeRatio {
				fmt.Printf("FAIL decode: v2 decodes at %.2fx of v1 (%.0f vs %.0f ev/s), floor %.2f\n",
					ratio, cur.DecodeV2PerSec, cur.DecodeV1PerSec, minDecodeRatio)
				fmt.Fprintf(md, "v2/v1 decode ratio: **%.2f** (floor %.2f) — FAIL\n", ratio, minDecodeRatio)
				failed = true
			} else {
				fmt.Printf("ok   decode: v2 decodes at %.2fx of v1 (%.0f vs %.0f ev/s), floor %.2f\n",
					ratio, cur.DecodeV2PerSec, cur.DecodeV1PerSec, minDecodeRatio)
				fmt.Fprintf(md, "v2/v1 decode ratio: **%.2f** (floor %.2f) — ok\n", ratio, minDecodeRatio)
			}
		}
	}
	return failed
}

// gateServer compares the server artifacts the way the pipeline gate
// compares its own: regression per measured worker count, plus an
// absolute speedup floor with the recorded-NumCPU skip. Reports failure.
func gateServer(md *strings.Builder, basePath, curPath string, threshold, minScaling float64, minScalingWorkers int) bool {
	base, err := loadServer(basePath)
	fatal(err)
	cur, err := loadServer(curPath)
	fatal(err)

	failed := false
	md.WriteString("\n### benchgate: server session-ingest events/sec, old vs new\n\n")
	md.WriteString("| workers | baseline ev/s | current ev/s | delta | status |\n")
	md.WriteString("|--:|--:|--:|--:|:--|\n")

	curBy := map[int]eval.PipelineScalingRow{}
	for _, row := range cur.Scaling {
		curBy[row.Workers] = row
	}
	for _, b := range base.Scaling {
		c, ok := curBy[b.Workers]
		if !ok {
			fmt.Printf("FAIL server %2d workers: baseline has this point, candidate did not measure it\n", b.Workers)
			fmt.Fprintf(md, "| %d | %.0f | — | — | FAIL (unmeasured) |\n", b.Workers, b.PerSecond)
			failed = true
			continue
		}
		delta := c.PerSecond/b.PerSecond - 1
		status := "ok  "
		if delta < -threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s server %2d workers: %12.0f ev/s vs baseline %12.0f (%+.1f%%, limit -%.0f%%)\n",
			status, b.Workers, c.PerSecond, b.PerSecond, delta*100, threshold*100)
		fmt.Fprintf(md, "| %d | %.0f | %.0f | %+.1f%% | %s |\n",
			b.Workers, b.PerSecond, c.PerSecond, delta*100, strings.TrimSpace(status))
	}

	if minScaling >= 0 {
		var row *eval.PipelineScalingRow
		for i := range cur.Scaling {
			if cur.Scaling[i].Workers == minScalingWorkers {
				row = &cur.Scaling[i]
				break
			}
		}
		switch {
		case row == nil:
			fmt.Printf("FAIL server scaling: candidate has no row at %d workers — the gate cannot certify what it did not measure\n",
				minScalingWorkers)
			fmt.Fprintf(md, "\nserver parallel-ingest speedup @ %d workers: **unmeasured** (floor %.2fx) — FAIL\n",
				minScalingWorkers, minScaling)
			failed = true
		case cur.NumCPU < minScalingWorkers:
			fmt.Printf("skip server scaling: candidate measured on %d CPUs, cannot exhibit a %d-worker speedup; floor %.2fx not enforced\n",
				cur.NumCPU, minScalingWorkers, minScaling)
			fmt.Fprintf(md, "\nserver parallel-ingest speedup @ %d workers: %.2fx on %d CPUs — floor %.2fx skipped\n",
				minScalingWorkers, row.Speedup, cur.NumCPU, minScaling)
		case row.Speedup < minScaling:
			fmt.Printf("FAIL server scaling: parallel-ingest speedup %.2fx at %d workers, floor %.2fx (NumCPU %d)\n",
				row.Speedup, minScalingWorkers, minScaling, cur.NumCPU)
			fmt.Fprintf(md, "\nserver parallel-ingest speedup @ %d workers: **%.2fx** (floor %.2fx) — FAIL\n",
				minScalingWorkers, row.Speedup, minScaling)
			failed = true
		default:
			fmt.Printf("ok   server scaling: parallel-ingest speedup %.2fx at %d workers (floor %.2fx, NumCPU %d)\n",
				row.Speedup, minScalingWorkers, minScaling, cur.NumCPU)
			fmt.Fprintf(md, "\nserver parallel-ingest speedup @ %d workers: **%.2fx** (floor %.2fx) — ok\n",
				minScalingWorkers, row.Speedup, minScaling)
		}
	}
	return failed
}

func loadServer(path string) (*eval.ServerBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r eval.ServerBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Scaling) == 0 {
		return nil, fmt.Errorf("%s: no scaling rows", path)
	}
	return &r, nil
}

func load(path string) (*eval.PipelineBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r eval.PipelineBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Scaling) == 0 {
		return nil, fmt.Errorf("%s: no scaling rows", path)
	}
	return &r, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
