// Command benchgate is the CI performance-regression gate: it compares a
// freshly measured piftbench pipeline artifact against the committed
// baseline and exits nonzero when the candidate regresses events/sec by
// more than the threshold at any worker count, or when any parity row in
// the candidate diverged from the sequential tracker.
//
// Usage:
//
//	benchgate -baseline BENCH_pipeline.json -current BENCH_current.json [-threshold 0.25]
//
// The gate only fails on regressions — a faster candidate passes — and a
// worker count present in the baseline but missing from the candidate is
// a failure, since the gate cannot certify what it did not measure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
)

func main() {
	baseline := flag.String("baseline", "BENCH_pipeline.json", "committed baseline artifact")
	current := flag.String("current", "BENCH_current.json", "freshly measured artifact")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated events/sec regression (fraction)")
	flag.Parse()
	if *threshold < 0 || *threshold >= 1 {
		fmt.Fprintf(os.Stderr, "benchgate: -threshold %v out of range [0, 1)\n", *threshold)
		os.Exit(2)
	}

	base, err := load(*baseline)
	fatal(err)
	cur, err := load(*current)
	fatal(err)

	failed := false
	for _, row := range cur.Parity {
		if !row.Match {
			fmt.Printf("FAIL parity: %s @ %d workers diverged from the sequential tracker\n", row.App, row.Workers)
			failed = true
		}
	}

	curBy := map[int]eval.PipelineScalingRow{}
	for _, row := range cur.Scaling {
		curBy[row.Workers] = row
	}
	for _, b := range base.Scaling {
		c, ok := curBy[b.Workers]
		if !ok {
			fmt.Printf("FAIL %2d workers: baseline has this point, candidate did not measure it\n", b.Workers)
			failed = true
			continue
		}
		delta := c.PerSecond/b.PerSecond - 1
		status := "ok  "
		if delta < -*threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %2d workers: %12.0f ev/s vs baseline %12.0f (%+.1f%%, limit -%.0f%%)\n",
			status, b.Workers, c.PerSecond, b.PerSecond, delta*100, *threshold*100)
	}

	if failed {
		fmt.Println("benchgate: FAILED")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

func load(path string) (*eval.PipelineBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r eval.PipelineBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Scaling) == 0 {
		return nil, fmt.Errorf("%s: no scaling rows", path)
	}
	return &r, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
