// Command piftload drives a running piftrun -serve instance with
// synthetic tenants and verifies the service end to end: every tenant's
// trace is streamed in (optionally split across several resumable
// requests), the session's verdicts are fetched back, and each must be
// identical to what a one-shot inline tracker computes for the same
// stream. It is both the load generator for soak runs and the assertion
// harness for the CI integration job.
//
// Usage:
//
//	piftload -addr http://localhost:8080 [-sessions 100] [-chunks 4]
//	         [-concurrency 16] [-ni 13] [-nt 3] [-untaint=true]
//	         [-finalize] [-scale 20] [-health-retries 30]
//	         [-hot N] [-hot-events M] [-wire-format v1|v2]
//
// The tracker flags must match the ones the server was started with —
// parity is only meaningful against the same configuration. Exit status
// is non-zero on any mismatch, protocol error, or failed health check.
//
// The initial /healthz probe retries with backoff for up to
// -health-retries attempts, so piftload can be started concurrently with
// the server it drives (CI does exactly that) without a sleep-and-hope
// shim in front of it.
//
// -wire-format chooses the trace serialization every request body uses:
// the fixed-record PIFTTRC1 (default, the conservative baseline) or the
// block-compressed PIFTTRC2. Verdicts must be identical either way — CI
// runs both and additionally asserts the v2 pass moved fewer wire bytes.
//
// -hot N adds N "hot" tenants, each streaming a -hot-events-sized
// multi-process synthetic corpus in one request — big enough to cross
// the server's parallel-ingest threshold. Their verdicts are verified
// against the inline replay in canonical (PID, Seq, Tag) order, which is
// order-insensitive and therefore holds on both the sequential and the
// sharded ingest path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eval"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the piftrun -serve instance")
	sessions := flag.Int("sessions", 100, "number of synthetic tenants to drive")
	chunks := flag.Int("chunks", 4, "requests to split each tenant's stream across (resume protocol)")
	concurrency := flag.Int("concurrency", 16, "tenants driven in parallel")
	ni := flag.Uint64("ni", 13, "tainting window size NI (must match the server)")
	nt := flag.Int("nt", 3, "max propagations per window NT (must match the server)")
	untaint := flag.Bool("untaint", true, "untainting rule (must match the server)")
	finalize := flag.Bool("finalize", false, "DELETE each session after verifying it")
	scale := flag.Int("scale", 20, "harness scale for trace generation")
	healthRetries := flag.Int("health-retries", 30, "attempts for the initial /healthz probe (backoff between attempts)")
	hot := flag.Int("hot", 0, "additional hot tenants, each streaming one -hot-events multi-process corpus")
	hotEvents := flag.Int("hot-events", 1<<17, "events per hot tenant's synthetic corpus")
	wireFormat := flag.String("wire-format", "v1", "trace wire format for request bodies: v1 (PIFTTRC1) or v2 (PIFTTRC2)")
	flag.Parse()
	if *chunks < 1 {
		*chunks = 1
	}
	format, err := trace.ParseFormat(*wireFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piftload:", err)
		os.Exit(2)
	}

	client := &http.Client{Timeout: 60 * time.Second}
	if err := checkHealth(client, *addr, *healthRetries); err != nil {
		fmt.Fprintln(os.Stderr, "piftload: healthz:", err)
		os.Exit(1)
	}

	cfg := core.Config{NI: *ni, NT: *nt, Untaint: *untaint}
	h := eval.NewHarness(*scale)
	// Warm the trace cache serially; after this, TenantEvents only reads.
	for _, a := range h.Apps() {
		if _, err := h.AppTrace(a); err != nil {
			fmt.Fprintln(os.Stderr, "piftload:", err)
			os.Exit(1)
		}
	}

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		events   atomic.Int64
		sem      = make(chan struct{}, *concurrency)
	)
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			n, err := driveTenant(client, *addr, h, cfg, i, *chunks, *finalize, format)
			events.Add(int64(n))
			if err != nil {
				failures.Add(1)
				fmt.Fprintf(os.Stderr, "piftload: %s: %v\n", eval.TenantID(i), err)
			}
		}(i)
	}
	for i := 0; i < *hot; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			n, err := driveHotTenant(client, *addr, cfg, i, *hotEvents, *finalize, format)
			events.Add(int64(n))
			if err != nil {
				failures.Add(1)
				fmt.Fprintf(os.Stderr, "piftload: hot-%05d: %v\n", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("piftload: %d sessions (%d hot), %d events in %v (%.0f events/s), %d failure(s)\n",
		*sessions+*hot, *hot, events.Load(), elapsed.Round(time.Millisecond),
		float64(events.Load())/elapsed.Seconds(), failures.Load())
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// checkHealth probes /healthz with bounded retry and linear backoff
// (capped at one second per attempt) so a server still binding its
// listener counts as "not yet", not "failed".
func checkHealth(client *http.Client, addr string, retries int) error {
	if retries < 1 {
		retries = 1
	}
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			d := time.Duration(100*attempt) * time.Millisecond
			if d > time.Second {
				d = time.Second
			}
			time.Sleep(d)
		}
		resp, err := client.Get(addr + "/healthz")
		if err != nil {
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("status %d", resp.StatusCode)
	}
	return fmt.Errorf("no healthy response after %d attempts: %w", retries, lastErr)
}

// driveHotTenant streams one synthetic multi-process corpus as a single
// request — the shape that crosses the server's parallel-ingest
// threshold — and verifies the session's verdicts canonically.
func driveHotTenant(client *http.Client, addr string, cfg core.Config, i, nevents int, finalize bool, f trace.Format) (int, error) {
	rec := tracegen.Generate(tracegen.Spec{Seed: int64(1000 + i), Events: nevents})
	id := fmt.Sprintf("hot-%05d", i)
	base := addr + "/v1/sessions/" + id
	if err := postChunk(client, base, rec.Events, 0, len(rec.Events), f); err != nil {
		return 0, err
	}
	got, err := fetchVerdicts(client, base)
	if err != nil {
		return 0, err
	}
	want := eval.OneShotVerdicts(rec.Events, cfg)
	core.SortVerdicts(want)
	core.SortVerdicts(got)
	if !eval.VerdictsEqual(got, want) {
		return 0, fmt.Errorf("verdict mismatch: server %d vs one-shot %d", len(got), len(want))
	}
	if finalize {
		req, _ := http.NewRequest(http.MethodDelete, base, nil)
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("DELETE: status %d", resp.StatusCode)
		}
	}
	return len(rec.Events), nil
}

// driveTenant streams tenant i's trace in `chunks` resumable requests,
// fetches the session's verdicts, and compares them against the one-shot
// inline tracker. Returns the number of events streamed.
func driveTenant(client *http.Client, addr string, h *eval.Harness, cfg core.Config, i, chunks int, finalize bool, f trace.Format) (int, error) {
	events, err := h.TenantEvents(i)
	if err != nil {
		return 0, err
	}
	id := eval.TenantID(i)
	base := addr + "/v1/sessions/" + id

	per := (len(events) + chunks - 1) / chunks
	for start := 0; start < len(events); start += per {
		end := start + per
		if end > len(events) {
			end = len(events)
		}
		if err := postChunk(client, base, events, start, end, f); err != nil {
			return 0, err
		}
	}

	got, err := fetchVerdicts(client, base)
	if err != nil {
		return 0, err
	}
	want := eval.OneShotVerdicts(events, cfg)
	if !eval.VerdictsEqual(got, want) {
		return 0, fmt.Errorf("verdict mismatch: server %d vs one-shot %d", len(got), len(want))
	}
	if finalize {
		req, _ := http.NewRequest(http.MethodDelete, base, nil)
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("DELETE: status %d", resp.StatusCode)
		}
	}
	return len(events), nil
}

// postChunk sends events[start:end] as a self-contained trace stream with
// the resume offset header, retrying on 429 backpressure and verifying
// the acknowledged offset reaches end.
func postChunk(client *http.Client, base string, events []cpu.Event, start, end int, f trace.Format) error {
	body := eval.EncodeTraceFormat(events[start:end], f)
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, base+"/events", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("PIFT-Offset", strconv.Itoa(start))
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		var ir server.IngestResponse
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if attempt > 100 {
				return fmt.Errorf("still 429 (%s) after %d attempts", ir.Error, attempt)
			}
			d := time.Duration(50+10*attempt) * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if s, err := strconv.Atoi(ra); err == nil && s > 0 {
					d = time.Duration(s) * time.Second
				}
			}
			time.Sleep(d)
			continue
		}
		if err != nil {
			return fmt.Errorf("POST events: decoding status %d: %w", resp.StatusCode, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST events: status %d: %s: %s", resp.StatusCode, ir.Error, ir.Detail)
		}
		if ir.Acked != uint64(end) {
			return fmt.Errorf("POST events: acked %d, want %d", ir.Acked, end)
		}
		return nil
	}
}

func fetchVerdicts(client *http.Client, base string) ([]core.SinkVerdict, error) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(base + "/verdicts")
		if err != nil {
			return nil, err
		}
		var vr server.VerdictsResponse
		err = json.NewDecoder(resp.Body).Decode(&vr)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt <= 100 {
			time.Sleep(time.Duration(50+10*attempt) * time.Millisecond)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("GET verdicts: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET verdicts: status %d", resp.StatusCode)
		}
		out := make([]core.SinkVerdict, len(vr.Verdicts))
		for i, v := range vr.Verdicts {
			out[i] = core.SinkVerdict{Tag: v.Tag, PID: v.PID, Seq: v.Seq, Tainted: v.Tainted}
		}
		return out, nil
	}
}
