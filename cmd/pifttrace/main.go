// Command pifttrace records an application's front-end event stream and
// prints its memory-operation statistics (the paper's Figure 2, 12, and 13
// analyses for an arbitrary app).
//
// Usage:
//
//	pifttrace -app LGRoot [-frontend dalvik|stackvm] [-scale 25] [-disasm N]
//	pifttrace -load trace.pift                       analyze a saved trace (either wire format)
//	pifttrace -transcode -load in.pift -save out.pift [-wire-format v1|v2]
//
// -save serializes in the format chosen by -wire-format (the
// block-compressed PIFTTRC2 by default); -load and -transcode sniff the
// input's magic, so both PIFTTRC1 and PIFTTRC2 files are accepted
// everywhere a trace file is read.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/android"
	"repro/internal/cpu"
	"repro/internal/droidbench"
	"repro/internal/eval"
	"repro/internal/frontend"
	"repro/internal/malware"
	"repro/internal/trace"
	"repro/internal/tracestat"
)

func main() {
	app := flag.String("app", "LGRoot", "application or malware sample name")
	feName := flag.String("frontend", "dalvik", "guest front end: dalvik or stackvm")
	scale := flag.Int("scale", malware.DefaultScale, "LGRoot workload scale")
	disasm := flag.Uint64("disasm", 0, "print the first N retired instructions as a gem5-style listing")
	save := flag.String("save", "", "write the recorded event trace to this file")
	load := flag.String("load", "", "analyze a previously saved trace instead of executing an app")
	transcode := flag.Bool("transcode", false, "convert the -load trace to -wire-format and write it to -save, skipping analysis")
	wireFormat := flag.String("wire-format", "v2", "wire format for -save and -transcode output: v1 (PIFTTRC1) or v2 (PIFTTRC2)")
	flag.Parse()

	format, err := trace.ParseFormat(*wireFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifttrace:", err)
		os.Exit(2)
	}

	if *transcode {
		if *load == "" || *save == "" {
			fmt.Fprintln(os.Stderr, "pifttrace: -transcode needs both -load and -save")
			os.Exit(2)
		}
		n, err := transcodeFile(*load, *save, format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pifttrace:", err)
			os.Exit(1)
		}
		fmt.Printf("transcoded %d events from %s to %s (%s)\n", n, *load, *save, format)
		return
	}

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pifttrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		rec, err := trace.ReadFrom(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pifttrace:", err)
			os.Exit(1)
		}
		analyze(*load, rec)
		return
	}

	suite, err := droidbench.SuiteFor(*feName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifttrace:", err)
		os.Exit(2)
	}
	var prog frontend.Program
	if *app == "LGRoot" && suite.Frontend().Name() == "dalvik" {
		prog = malware.LGRoot(*scale)
	} else {
		for _, a := range suite.Apps() {
			if a.Name == *app {
				prog = a.Prog
			}
		}
		if suite.Frontend().Name() == "dalvik" {
			for _, s := range malware.Samples() {
				if s.Name == *app {
					prog = s.Prog
				}
			}
		}
	}
	if prog == nil {
		fmt.Fprintf(os.Stderr, "pifttrace: unknown app %q\n", *app)
		os.Exit(2)
	}

	if *disasm > 0 {
		tracer := cpu.NewTracer(os.Stdout, *disasm)
		if _, err := android.Run(prog, android.RunOptions{
			Hooks: []cpu.InstrHook{tracer},
		}); err != nil {
			fmt.Fprintln(os.Stderr, "pifttrace:", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	rec, err := eval.Record(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifttrace:", err)
		os.Exit(1)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pifttrace:", err)
			os.Exit(1)
		}
		if _, err := rec.WriteToFormat(f, format); err != nil {
			fmt.Fprintln(os.Stderr, "pifttrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pifttrace:", err)
			os.Exit(1)
		}
		fmt.Printf("saved %d events to %s (%s)\n", rec.Len(), *save, format)
	}
	analyze(*app, rec)
}

// transcodeFile streams src into dst re-serialized in format f, without
// materializing the whole trace; the source format is sniffed.
func transcodeFile(src, dst string, f trace.Format) (uint64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	n, err := trace.Transcode(out, in, f)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
		return 0, err
	}
	return n, nil
}

// analyze prints the memory-operation statistics of one trace.
func analyze(label string, rec *trace.Recorder) {
	c := tracestat.NewCollector()
	rec.Replay(c)
	c.Finish()

	sum := rec.Summarize()
	fmt.Printf("%s: %d events (%d loads, %d stores, %d sources, %d sinks), %d instructions\n\n",
		label, rec.Len(), sum.Loads, sum.Stores, sum.Sources, sum.Sinks, sum.LastSeq)
	fmt.Println(c.RenderFigure2())
	fmt.Println(eval.RenderFigure12(c))
	fmt.Println(eval.RenderFigure13(c))
}
