// Command piftbench regenerates the paper's tables and figures from the
// simulated platform and prints them as text.
//
// Usage:
//
//	piftbench [-exp all|fig2|table1|fig10|fig11|headline|fig12|fig13|
//	           fig14|fig15|fig16|fig17|fig18|pipeline|stackvm]
//	          [-frontend dalvik|stackvm] [-scale N]
//	          [-workers 1,2,4,8] [-events 2097152] [-wire-format v1|v2]
//
// -scale sizes the LGRoot workload that drives the trace-statistics and
// overhead experiments (default 25; larger = longer trace, smoother
// distributions). -workers selects the worker counts the pipeline
// experiment sweeps, and -events the size of the synthetic corpus its
// shard-owned scaling sweep drains (0 disables that sweep).
// -wire-format chooses the trace serialization the pipeline and server
// sweeps ingest — the block-compressed PIFTTRC2 by default; the pipeline
// experiment additionally reports the per-corpus v1-vs-v2 compression
// table and cross-format decode throughput.
//
// -frontend selects which guest VM's benchmark suite backs the harness:
// the Dalvik-style register VM (default) or the wasm-style stack VM. Both
// front ends lower to the same event stream, so every trace-driven
// experiment runs on either; the malware corpus is Dalvik bytecode and
// appears only with the matching front end.
//
// -exp stackvm runs the second front end's dedicated accuracy experiment:
// every stack-VM app against the DIFT oracle and PIFT at NI=13/NT=3 and
// NI=∞, quantifying the flows the finite window misses (the spill/reload
// family), plus the per-frontend load→store distance comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/droidbench"
	"repro/internal/eval"
	"repro/internal/malware"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig2, table1, fig10, fig11, headline, fig12, fig13, fig14, fig15, fig16, fig17, fig18, jit, stores, cache, categories, allsamples, apps, summary, pipeline, server, stackvm)")
	feName := flag.String("frontend", "dalvik", "guest front end backing the harness suite: dalvik or stackvm")
	scale := flag.Int("scale", malware.DefaultScale, "LGRoot workload scale")
	workers := flag.String("workers", "1,2,4,8", "comma-separated worker counts for -exp pipeline and -exp server")
	events := flag.Int("events", 1<<21, "synthetic corpus size (events) for -exp pipeline's shard-owned scaling sweep; 0 disables")
	jsonOut := flag.String("json", "BENCH_pipeline.json", "path for the pipeline experiment's JSON artifact (tables + metrics snapshot); empty disables")
	serverEvents := flag.Int("server-events", 1<<20, "corpus size (events) for -exp server's session-ingest scaling sweep")
	serverJSON := flag.String("server-json", "BENCH_server.json", "path for the server experiment's JSON artifact; empty disables")
	wireFormat := flag.String("wire-format", "v2", "trace wire format for the -exp pipeline and -exp server corpora: v1 (PIFTTRC1) or v2 (PIFTTRC2)")
	flag.Parse()

	format, err := trace.ParseFormat(*wireFormat)
	fatal(err)

	suite, err := droidbench.SuiteFor(*feName)
	fatal(err)
	h := eval.NewHarnessSuite(*scale, suite)
	selected := strings.Split(*exp, ",")
	run := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	start := time.Now()
	ok := false

	if run("table1") {
		ok = true
		rows, err := eval.Table1For(h.Frontend())
		fatal(err)
		display := h.Frontend().Name()
		if display == "dalvik" {
			display = "Dalvik"
		}
		fmt.Println(eval.RenderTable1For(display, rows))
	}
	if run("fig10") {
		ok = true
		fmt.Println(eval.Figure10(h, 30).Render())
	}
	if run("fig2") || run("fig12") || run("fig13") {
		c, err := eval.Figure2(h)
		fatal(err)
		if run("fig2") {
			ok = true
			fmt.Println(c.RenderFigure2())
		}
		if run("fig12") {
			ok = true
			fmt.Println(eval.RenderFigure12(c))
		}
		if run("fig13") {
			ok = true
			fmt.Println(eval.RenderFigure13(c))
		}
	}
	if run("fig11") {
		ok = true
		r, err := eval.Figure11(h)
		fatal(err)
		fmt.Println(r.Render())
	}
	if run("headline") {
		ok = true
		r, err := eval.Headline(h)
		fatal(err)
		fmt.Println(r.Render())
	}
	if run("summary") {
		ok = true
		rows, err := eval.Summary(h)
		fatal(err)
		fmt.Println(eval.RenderSummary(rows))
	}
	if run("apps") {
		ok = true
		fmt.Println(droidbench.RenderInventory())
	}
	if run("stackvm") {
		ok = true
		r, err := eval.StackVM(h)
		fatal(err)
		fmt.Println(r.Render())
	}
	if run("categories") {
		ok = true
		cfg := core.Config{NI: 13, NT: 3, Untaint: true}
		rows, err := eval.CategoryBreakdown(h, cfg)
		fatal(err)
		fmt.Println(eval.RenderCategoryBreakdown(rows, cfg))
	}
	if run("fig14") {
		ok = true
		g, err := eval.Figure14(h)
		fatal(err)
		fmt.Println(g.Render("Figure 14: max tainted bytes (LGRoot)", eval.Count))
	}
	if run("fig15") || run("fig16") {
		ok = true
		r, err := eval.TimeSeries(h, 40)
		fatal(err)
		fmt.Println(r.Render())
	}
	if run("fig17") {
		ok = true
		g, err := eval.Figure17(h)
		fatal(err)
		fmt.Println(g.Render("Figure 17: max distinct tainted ranges (LGRoot)", eval.Count))
	}
	if run("fig18") {
		ok = true
		rows, err := eval.UntaintEffect(h)
		fatal(err)
		fmt.Println(eval.RenderUntaintEffect(rows))
	}
	if run("allsamples") {
		ok = true
		rows, err := eval.AllSampleStats(*scale)
		fatal(err)
		fmt.Println(eval.RenderSampleStats(rows))
	}
	if run("jit") {
		ok = true
		r, err := eval.JITComparison(*scale)
		fatal(err)
		fmt.Println(r.Render())
	}
	if run("stores") {
		ok = true
		rows, err := eval.StoreAblation(h)
		fatal(err)
		fmt.Println(eval.RenderStoreAblation(rows))
	}
	if run("pipeline") {
		ok = true
		counts, err := parseWorkers(*workers)
		fatal(err)
		cfg := core.Config{NI: 13, NT: 3, Untaint: true}
		bench, err := eval.PipelineBench(h, cfg, counts, 64, 3, *events, format)
		fatal(err)
		fmt.Println(eval.RenderPipelineParity(bench.Parity, cfg))
		fmt.Println(eval.RenderPipelineScaling(bench.Scaling))
		if len(bench.Synthetic) > 0 {
			fmt.Println(eval.RenderScalingTable(
				fmt.Sprintf("Shard-owned ingest scaling (synthetic corpus, %d events, %s, NumCPU=%d)",
					bench.SyntheticEvents, bench.WireFormat, bench.NumCPU),
				bench.Synthetic))
		}
		if len(bench.Wire) > 0 {
			fmt.Println(eval.RenderWire(bench.Wire, &eval.DecodeBenchResult{
				Events:   bench.SyntheticEvents,
				V1PerSec: bench.DecodeV1PerSec,
				V2PerSec: bench.DecodeV2PerSec,
				Ratio:    bench.DecodeV2PerSec / bench.DecodeV1PerSec,
			}))
		}
		if *jsonOut != "" {
			fatal(writeJSONAtomic(*jsonOut, bench))
			fmt.Printf("(pipeline artifact written to %s)\n", *jsonOut)
		}
	}
	if run("server") {
		ok = true
		counts, err := parseWorkers(*workers)
		fatal(err)
		cfg := core.Config{NI: 13, NT: 3, Untaint: true}
		bench, err := eval.ServerBench(cfg, counts, *serverEvents, 3, format)
		fatal(err)
		fmt.Println(eval.RenderScalingTable(
			fmt.Sprintf("Server session-ingest scaling (synthetic corpus, %d events, %s, NumCPU=%d)",
				bench.Events, bench.WireFormat, bench.NumCPU),
			bench.Scaling))
		if *serverJSON != "" {
			fatal(atomicfile.WriteFile(*serverJSON, bench.WriteJSON))
			fmt.Printf("(server artifact written to %s)\n", *serverJSON)
		}
	}
	if run("cache") {
		ok = true
		rows, err := eval.CacheCapacity(h, []int{2, 8, 32, 128, 512, 2730})
		fatal(err)
		fmt.Println(eval.RenderCacheCapacity(rows))
	}

	if !ok {
		fmt.Fprintf(os.Stderr, "piftbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}

// writeJSONAtomic writes the artifact atomically, so an interrupted run
// can never leave a truncated artifact for the CI perf gate to misread as
// a regression.
func writeJSONAtomic(path string, bench *eval.PipelineBenchResult) error {
	return atomicfile.WriteFile(path, bench.WriteJSON)
}

func parseWorkers(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "piftbench:", err)
		os.Exit(1)
	}
}
